//! Declarative simulation scenarios and sweep grids.
//!
//! A [`Scenario`] is a plain, serde-(de)serializable value — in the spirit
//! of Firecracker's `MachineConfiguration` — that bundles everything one
//! simulation run needs: the machine geometry, the directory allocation
//! policy, the NUMA page-placement policy, the workload spec, and the seed.
//! Scenario documents round-trip through TOML and JSON, so experiments can
//! be checked in, diffed and reviewed instead of being hardwired in code.
//!
//! A [`ScenarioGrid`] is a scenario plus sweep axes (benchmarks, policies,
//! probe-filter coverages, NUMA policies); [`ScenarioGrid::expand`] takes
//! the cartesian product and yields the concrete scenario set the
//! [`crate::BatchRunner`] executes in parallel.

use allarm_coherence::AllocationPolicy;
use allarm_mem::NumaPolicy;
use allarm_types::config::MachineConfig;
use allarm_types::error::ConfigError;
use allarm_workloads::{Benchmark, Workload, WorkloadSpec};
use serde::{Deserialize, Serialize};

use crate::builder::SimulationBuilder;
use crate::metrics::SimReport;
use crate::simulator::Simulator;

/// Everything one simulation run needs, as a serializable value.
///
/// # Examples
///
/// Build a scenario in code, round-trip it through TOML, and run it:
///
/// ```
/// use allarm_core::{AllocationPolicy, Scenario};
/// use allarm_workloads::Benchmark;
///
/// let scenario = Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Allarm)
///     .with_accesses(1_000);
/// let text = scenario.to_toml().unwrap();
/// let parsed = Scenario::from_toml(&text).unwrap();
/// assert_eq!(parsed, scenario);
///
/// let report = parsed.run().unwrap();
/// assert!(report.total_accesses > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable label, propagated into reports and result sinks.
    pub name: String,
    /// The simulated machine (Table I by default).
    pub machine: MachineConfig,
    /// The probe-filter allocation policy in force at every directory.
    pub policy: AllocationPolicy,
    /// The NUMA page-placement policy.
    pub numa_policy: NumaPolicy,
    /// What to run.
    pub workload: WorkloadSpec,
    /// Seed for workload generation (and any other randomness); a scenario
    /// is a pure function of its fields, including this one.
    pub seed: u64,
    /// Worker threads one run shards across ([`SimThreads`]; defaults to
    /// serial). Reports are byte-identical for every value, so this knob
    /// never makes a scenario a different experiment — it only changes how
    /// fast the host executes it.
    #[serde(default)]
    pub sim_threads: SimThreads,
    /// Shared warm-up prefix in total accesses (summed across threads);
    /// `0` — the default — disables fork-from-warm. Batch members that
    /// agree on machine, policies, seed, workload shape and this value
    /// execute the prefix once and fork every member from the in-memory
    /// warm image ([`crate::BatchRunner`]). Like [`Scenario::sim_threads`],
    /// this never changes a report — forked runs are byte-identical to
    /// cold ones — so it is a scheduling hint, not an experiment axis;
    /// a standalone [`Scenario::run`] ignores it.
    #[serde(default)]
    pub warmup_accesses: u64,
}

/// The intra-run parallelism knob of a [`Scenario`]: how many worker
/// threads one simulation shards its home nodes across.
///
/// `1` (the default) runs serially; `0` means one worker per available
/// hardware thread. The sharded kernel guarantees byte-identical reports
/// for every value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimThreads(pub usize);

impl SimThreads {
    /// Serial execution (the default).
    pub const SERIAL: SimThreads = SimThreads(1);

    /// One worker per available hardware thread.
    pub const AUTO: SimThreads = SimThreads(0);

    /// The raw thread count (`0` means auto).
    pub fn get(self) -> usize {
        self.0
    }

    /// The concrete worker count this setting resolves to on this host.
    pub fn resolve(self) -> usize {
        match self.0 {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

impl Default for SimThreads {
    fn default() -> Self {
        SimThreads::SERIAL
    }
}

impl Scenario {
    /// A scenario on the paper's Table I machine with the evaluation's
    /// 16-thread, 250k-access configuration.
    pub fn paper(benchmark: Benchmark, policy: AllocationPolicy) -> Self {
        Scenario {
            name: format!("{}/{}", benchmark.name(), policy.name()),
            machine: MachineConfig::date2014(),
            policy,
            numa_policy: NumaPolicy::FirstTouch,
            workload: WorkloadSpec::threads(benchmark, 16, 250_000),
            seed: 2014,
            sim_threads: SimThreads::default(),
            warmup_accesses: 0,
        }
    }

    /// A scaled-down scenario (Table I machine, short traces) for tests.
    pub fn quick_test(benchmark: Benchmark, policy: AllocationPolicy) -> Self {
        Scenario {
            workload: WorkloadSpec::threads(benchmark, 16, 3_000),
            ..Scenario::paper(benchmark, policy)
        }
    }

    /// Returns a copy with a different name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Returns a copy with a different allocation policy (name updated to
    /// match if it was the default `workload/policy` form).
    pub fn with_policy(mut self, policy: AllocationPolicy) -> Self {
        let label = self.workload.label();
        let default_name = format!("{}/{}", label, self.policy.name());
        if self.name == default_name {
            self.name = format!("{}/{}", label, policy.name());
        }
        self.policy = policy;
        self
    }

    /// Returns a copy with a different probe-filter coverage per node.
    pub fn with_pf_coverage(mut self, coverage_bytes: u64) -> Self {
        self.machine = self.machine.with_probe_filter_coverage(coverage_bytes);
        self
    }

    /// Returns a copy with a different per-thread / per-process trace
    /// length.
    pub fn with_accesses(mut self, accesses: usize) -> Self {
        self.workload = self.workload.with_accesses(accesses);
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy sharding each run across `sim_threads` worker
    /// threads (`0`: one per available hardware thread). The report is
    /// unaffected; only wall-clock time changes.
    pub fn with_sim_threads(mut self, sim_threads: usize) -> Self {
        self.sim_threads = SimThreads(sim_threads);
        self
    }

    /// Returns a copy with a different warm-up prefix length (total
    /// accesses; `0` disables fork-from-warm). Purely a batch-scheduling
    /// hint — see [`Scenario::warmup_accesses`].
    pub fn with_warmup_accesses(mut self, accesses: u64) -> Self {
        self.warmup_accesses = accesses;
        self
    }

    /// Validates the scenario: machine geometry, workload spec, and their
    /// compatibility (the machine must have enough cores).
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.machine.validate()?;
        self.workload
            .validate()
            .map_err(|e| ConfigError::new("workload", e))?;
        let required = self
            .workload
            .cores_required()
            .map_err(|e| ConfigError::new("workload", e))?;
        if required > self.machine.num_cores as usize {
            return Err(ConfigError::new(
                "workload",
                format!(
                    "needs {required} cores but the machine has {}",
                    self.machine.num_cores
                ),
            ));
        }
        Ok(())
    }

    /// Generates the concrete workload for this scenario — a pure function
    /// of the workload spec and seed.
    pub fn workload(&self) -> Workload {
        self.workload.materialize(self.seed)
    }

    /// Opens this scenario's workload as a bounded-memory streaming trace
    /// source, when the spec is a frame-chunked `binary-v2` replay —
    /// `Ok(None)` for every other spec (those must be materialized via
    /// [`Scenario::workload`]). Streaming and materialized replays of the
    /// same file produce byte-identical reports.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when a streamable trace cannot be opened
    /// or fails its directory validation.
    pub fn streaming_source(&self) -> Result<Option<allarm_workloads::TraceSource>, ConfigError> {
        self.workload
            .streaming_source()
            .map_err(|e| ConfigError::new("workload", e))
    }

    /// Builds the configured simulator for this scenario.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if validation fails.
    pub fn build(&self) -> Result<Simulator, ConfigError> {
        SimulationBuilder::from_scenario(self)?.build()
    }

    /// Validates, builds and runs the scenario. Frame-chunked `binary-v2`
    /// trace replays stream straight off disk (one decoded frame per
    /// thread in memory); every other workload is materialized first. The
    /// report is byte-identical either way.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if validation fails.
    pub fn run(&self) -> Result<SimReport, ConfigError> {
        let simulator = self.build()?;
        if let Some(source) = self.streaming_source()? {
            return Ok(simulator.run_source((&source).into()));
        }
        Ok(simulator.run(&self.workload()))
    }

    /// Serializes the scenario as a TOML document.
    ///
    /// # Errors
    ///
    /// Returns an error if the value cannot be rendered (never happens for
    /// well-formed scenarios).
    pub fn to_toml(&self) -> Result<String, serde::Error> {
        toml::to_string(self)
    }

    /// Parses a scenario from a TOML document.
    ///
    /// # Errors
    ///
    /// Returns an error describing the first malformed field.
    pub fn from_toml(text: &str) -> Result<Self, serde::Error> {
        toml::from_str(text)
    }

    /// Serializes the scenario as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self)
    }

    /// Parses a scenario from JSON.
    ///
    /// # Errors
    ///
    /// Returns an error describing the first malformed field.
    pub fn from_json(text: &str) -> Result<Self, serde::Error> {
        serde_json::from_str(text)
    }
}

/// A base scenario plus sweep axes: the declarative form of "this figure".
///
/// Empty axes mean "keep the base scenario's value"; non-empty axes are
/// swept in order, and [`ScenarioGrid::expand`] yields the cartesian
/// product (benchmarks × coverages × NUMA policies × allocation policies),
/// slowest axis first, so related runs — in particular the baseline/ALLARM
/// pair of one configuration — sit next to each other in the result order.
///
/// # Examples
///
/// ```
/// use allarm_core::{AllocationPolicy, Scenario, ScenarioGrid};
/// use allarm_workloads::Benchmark;
///
/// let grid = ScenarioGrid::new(Scenario::quick_test(
///         Benchmark::Barnes, AllocationPolicy::Baseline))
///     .benchmarks(vec![Benchmark::Barnes, Benchmark::X264])
///     .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm])
///     .pf_coverages(vec![512 * 1024, 128 * 1024]);
/// assert_eq!(grid.len(), 8);
/// let scenarios = grid.expand();
/// assert_eq!(scenarios[0].name, "barnes/512kB/baseline");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioGrid {
    /// The scenario every grid point starts from.
    pub base: Scenario,
    /// Benchmarks to sweep (empty: keep the base workload's benchmark).
    pub benchmarks: Vec<Benchmark>,
    /// Probe-filter coverages in bytes to sweep (empty: keep the base).
    pub pf_coverages: Vec<u64>,
    /// NUMA policies to sweep (empty: keep the base).
    pub numa_policies: Vec<NumaPolicy>,
    /// Per-thread / per-process trace lengths to sweep (empty: keep the
    /// base workload's). Varies second-fastest — just above the policy
    /// axis — so the points sharing one fork-from-warm image (same
    /// machine/policy, different length) sit next to each other.
    #[serde(default)]
    pub accesses: Vec<usize>,
    /// Allocation policies to sweep (empty: keep the base). This is the
    /// fastest-varying axis, so each configuration's policy pair is
    /// adjacent in the expansion.
    pub policies: Vec<AllocationPolicy>,
    /// Optional shared warm-up prefix: every expanded scenario gets its
    /// [`Scenario::warmup_accesses`] set to `warmup.accesses`, so the
    /// batch runner executes the prefix once per machine/workload group
    /// and forks each grid point from the warm image. In TOML:
    /// `warmup = { accesses = 20000 }` (or a `[warmup]` table).
    #[serde(default)]
    pub warmup: Option<Warmup>,
}

/// The shared warm-up stanza of a [`ScenarioGrid`]: the prefix every grid
/// point replays identically before the swept axes can diverge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Warmup {
    /// Warm-up length in total accesses, summed across all threads.
    pub accesses: u64,
}

impl ScenarioGrid {
    /// Creates a grid with no sweep axes (expands to just the base).
    pub fn new(base: Scenario) -> Self {
        ScenarioGrid {
            base,
            benchmarks: Vec::new(),
            pf_coverages: Vec::new(),
            numa_policies: Vec::new(),
            accesses: Vec::new(),
            policies: Vec::new(),
            warmup: None,
        }
    }

    /// Sets the benchmark axis.
    pub fn benchmarks(mut self, benchmarks: Vec<Benchmark>) -> Self {
        self.benchmarks = benchmarks;
        self
    }

    /// Sets the probe-filter coverage axis (bytes per node).
    pub fn pf_coverages(mut self, coverages: Vec<u64>) -> Self {
        self.pf_coverages = coverages;
        self
    }

    /// Sets the NUMA policy axis.
    pub fn numa_policies(mut self, policies: Vec<NumaPolicy>) -> Self {
        self.numa_policies = policies;
        self
    }

    /// Sets the allocation policy axis.
    pub fn policies(mut self, policies: Vec<AllocationPolicy>) -> Self {
        self.policies = policies;
        self
    }

    /// Sets the trace-length axis (per-thread / per-process accesses).
    pub fn accesses(mut self, accesses: Vec<usize>) -> Self {
        self.accesses = accesses;
        self
    }

    /// Sets the shared warm-up prefix (total accesses across threads).
    pub fn warmup(mut self, accesses: u64) -> Self {
        self.warmup = Some(Warmup { accesses });
        self
    }

    /// Number of scenarios the grid expands to.
    pub fn len(&self) -> usize {
        [
            self.benchmarks.len(),
            self.pf_coverages.len(),
            self.numa_policies.len(),
            self.accesses.len(),
            self.policies.len(),
        ]
        .iter()
        .map(|&n| n.max(1))
        .product()
    }

    /// True if the grid expands to nothing (never; kept for clippy's
    /// `len_without_is_empty` convention).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Expands the grid into concrete scenarios, slowest axis first:
    /// benchmarks, then coverages, then NUMA policies, then trace
    /// lengths, then allocation policies. Scenario names encode the swept
    /// axes, e.g. `"barnes/512kB/baseline"` or
    /// `"raytrace/1600acc/allarm"`.
    pub fn expand(&self) -> Vec<Scenario> {
        // A trace replay fixes the reference stream, so a benchmark axis
        // over one would expand to byte-identical rows under N different
        // labels ([`WorkloadSpec::with_benchmark`] cannot relabel a
        // trace). `validate` refuses such grids loudly; `expand` called
        // directly collapses the axis to the single honest point.
        let benchmarks: Vec<Option<Benchmark>> =
            if self.base.workload.benchmark().is_none() && !self.benchmarks.is_empty() {
                axis(&[])
            } else {
                axis(&self.benchmarks)
            };
        let coverages: Vec<Option<u64>> = axis(&self.pf_coverages);
        let numas: Vec<Option<NumaPolicy>> = axis(&self.numa_policies);
        let lengths: Vec<Option<usize>> = axis(&self.accesses);
        let policies: Vec<Option<AllocationPolicy>> = axis(&self.policies);

        let mut scenarios = Vec::with_capacity(self.len());
        for &bench in &benchmarks {
            for &coverage in &coverages {
                for &numa in &numas {
                    for &length in &lengths {
                        for &policy in &policies {
                            let mut s = self.base.clone();
                            if let Some(b) = bench {
                                s.workload = s.workload.with_benchmark(b);
                            }
                            if let Some(c) = coverage {
                                s.machine = s.machine.with_probe_filter_coverage(c);
                            }
                            if let Some(n) = numa {
                                s.numa_policy = n;
                            }
                            if let Some(a) = length {
                                s.workload = s.workload.with_accesses(a);
                            }
                            if let Some(p) = policy {
                                s.policy = p;
                            }
                            if let Some(w) = self.warmup {
                                s.warmup_accesses = w.accesses;
                            }
                            s.name = grid_point_name(&s, bench, coverage, numa, length, policy);
                            scenarios.push(s);
                        }
                    }
                }
            }
        }
        scenarios
    }

    /// Validates the base and every axis value.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found across the expansion, or a
    /// `benchmarks` error when the axis is swept over a trace-replay base
    /// (a trace fixes the reference stream, so every point would replay
    /// the identical workload under a misleading benchmark label).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.benchmarks.is_empty() && self.base.workload.benchmark().is_none() {
            return Err(ConfigError::new(
                "benchmarks",
                "cannot sweep the benchmark axis over a trace-replay workload — the \
                 trace file fixes the reference stream",
            ));
        }
        if !self.accesses.is_empty() && !self.base.workload.supports_length_override() {
            return Err(ConfigError::new(
                "accesses",
                "cannot sweep the trace-length axis over a v1 trace-replay workload — \
                 the file fixes the reference stream (record the trace as binary-v2, \
                 whose frame directory supports prefix truncation)",
            ));
        }
        for scenario in self.expand() {
            scenario.validate()?;
        }
        Ok(())
    }

    /// Serializes the grid as a TOML document.
    ///
    /// # Errors
    ///
    /// Returns an error if the value cannot be rendered.
    pub fn to_toml(&self) -> Result<String, serde::Error> {
        toml::to_string(self)
    }

    /// Parses a grid from a TOML document.
    ///
    /// # Errors
    ///
    /// Returns an error describing the first malformed field.
    pub fn from_toml(text: &str) -> Result<Self, serde::Error> {
        toml::from_str(text)
    }
}

/// Turns a sweep axis into "sweep these" or "keep the base" form.
fn axis<T: Copy>(values: &[T]) -> Vec<Option<T>> {
    if values.is_empty() {
        vec![None]
    } else {
        values.iter().copied().map(Some).collect()
    }
}

/// Builds the `workload[/coverage][/numa][/accesses]/policy` name of one
/// grid point; axes that are not swept are omitted (except the workload
/// label — the benchmark name, or a replayed trace's recorded name — and
/// the policy, which always appear so reports stay self-describing).
fn grid_point_name(
    scenario: &Scenario,
    bench: Option<Benchmark>,
    coverage: Option<u64>,
    numa: Option<NumaPolicy>,
    length: Option<usize>,
    _policy: Option<AllocationPolicy>,
) -> String {
    let mut parts: Vec<String> = Vec::new();
    parts.push(
        bench
            .map(|b| b.name().to_string())
            .unwrap_or_else(|| scenario.workload.label()),
    );
    if let Some(c) = coverage {
        parts.push(format!("{}kB", c / 1024));
    }
    if let Some(n) = numa {
        parts.push(n.name().to_string());
    }
    if let Some(a) = length {
        parts.push(format!("{a}acc"));
    }
    parts.push(scenario.policy.name().to_string());
    parts.join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_is_valid_and_named() {
        let s = Scenario::paper(Benchmark::Barnes, AllocationPolicy::Allarm);
        s.validate().unwrap();
        assert_eq!(s.name, "barnes/allarm");
        assert_eq!(s.machine, MachineConfig::date2014());
        assert_eq!(s.seed, 2014);
    }

    #[test]
    fn builder_style_helpers_compose() {
        let s = Scenario::quick_test(Benchmark::Dedup, AllocationPolicy::Baseline)
            .with_policy(AllocationPolicy::Allarm)
            .with_pf_coverage(128 * 1024)
            .with_accesses(500)
            .with_seed(7)
            .named("custom");
        assert_eq!(s.policy, AllocationPolicy::Allarm);
        assert_eq!(s.machine.probe_filter.coverage_bytes, 128 * 1024);
        assert_eq!(s.workload.accesses().unwrap(), 500);
        assert_eq!(s.seed, 7);
        assert_eq!(s.name, "custom");
    }

    #[test]
    fn with_policy_renames_default_names_only() {
        let s = Scenario::quick_test(Benchmark::Dedup, AllocationPolicy::Baseline)
            .with_policy(AllocationPolicy::Allarm);
        assert_eq!(s.name, "dedup/allarm");
        let s = Scenario::quick_test(Benchmark::Dedup, AllocationPolicy::Baseline)
            .named("mine")
            .with_policy(AllocationPolicy::Allarm);
        assert_eq!(s.name, "mine");
    }

    #[test]
    fn validation_rejects_oversized_workloads() {
        let mut s = Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline);
        s.workload = WorkloadSpec::threads(Benchmark::Barnes, 64, 10);
        let err = s.validate().unwrap_err();
        assert_eq!(err.field(), "workload");
        assert!(err.reason().contains("64 cores"));
    }

    #[test]
    fn validation_rejects_bad_machines() {
        let mut s = Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline);
        s.machine.l2.ways = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn toml_without_miss_window_parses_to_the_default() {
        // Scenario documents written before the miss window existed have
        // no `[machine.miss_window]` table; they must keep parsing and get
        // the default window.
        let s = Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline);
        let text = s.to_toml().unwrap();
        let start = text
            .find("[machine.miss_window]")
            .expect("the window is serialized as its own machine table");
        let end = text[start + 1..]
            .find("\n[")
            .map(|i| start + 1 + i + 1)
            .unwrap_or(text.len());
        let stripped = format!("{}{}", &text[..start], &text[end..]);
        assert!(!stripped.contains("miss_window"));
        let parsed = Scenario::from_toml(&stripped).unwrap();
        assert_eq!(
            parsed.machine.miss_window,
            allarm_types::MissWindowConfig::default_window()
        );
        assert_eq!(parsed, s);
    }

    #[test]
    fn workload_generation_is_pure() {
        let s =
            Scenario::quick_test(Benchmark::Cholesky, AllocationPolicy::Allarm).with_accesses(200);
        assert_eq!(s.workload(), s.workload());
        assert_ne!(s.workload(), s.with_seed(3).workload());
    }

    #[test]
    fn grid_expansion_orders_policy_fastest() {
        let grid = ScenarioGrid::new(Scenario::quick_test(
            Benchmark::Barnes,
            AllocationPolicy::Baseline,
        ))
        .benchmarks(vec![Benchmark::Barnes, Benchmark::Dedup])
        .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm]);
        let scenarios = grid.expand();
        assert_eq!(scenarios.len(), 4);
        assert_eq!(grid.len(), 4);
        assert_eq!(scenarios[0].name, "barnes/baseline");
        assert_eq!(scenarios[1].name, "barnes/allarm");
        assert_eq!(scenarios[2].name, "dedup/baseline");
        assert_eq!(scenarios[3].name, "dedup/allarm");
    }

    #[test]
    fn empty_axes_keep_the_base() {
        let base = Scenario::quick_test(Benchmark::X264, AllocationPolicy::Allarm);
        let grid = ScenarioGrid::new(base.clone());
        let scenarios = grid.expand();
        assert_eq!(scenarios.len(), 1);
        assert_eq!(scenarios[0].machine, base.machine);
        assert_eq!(scenarios[0].policy, AllocationPolicy::Allarm);
        assert_eq!(scenarios[0].name, "x264/allarm");
        assert!(!grid.is_empty());
    }

    #[test]
    fn coverage_axis_appears_in_names() {
        let grid = ScenarioGrid::new(Scenario::quick_test(
            Benchmark::Barnes,
            AllocationPolicy::Baseline,
        ))
        .pf_coverages(vec![512 * 1024, 64 * 1024]);
        let scenarios = grid.expand();
        assert_eq!(scenarios[0].name, "barnes/512kB/baseline");
        assert_eq!(scenarios[1].name, "barnes/64kB/baseline");
        assert_eq!(scenarios[1].machine.probe_filter.coverage_bytes, 64 * 1024);
    }

    #[test]
    fn accesses_axis_and_warmup_flow_into_every_point() {
        let grid = ScenarioGrid::new(Scenario::quick_test(
            Benchmark::Barnes,
            AllocationPolicy::Baseline,
        ))
        .accesses(vec![400, 800])
        .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm])
        .warmup(1_000);
        assert_eq!(grid.len(), 4);
        let scenarios = grid.expand();
        assert_eq!(scenarios[0].name, "barnes/400acc/baseline");
        assert_eq!(scenarios[3].name, "barnes/800acc/allarm");
        // The length axis varies just above the policy axis, so both
        // policies of one length are adjacent (paired comparisons) and
        // both lengths of one policy share a warm image group.
        assert_eq!(scenarios[1].workload.accesses().unwrap(), 400);
        assert_eq!(scenarios[2].workload.accesses().unwrap(), 800);
        for s in &scenarios {
            assert_eq!(s.warmup_accesses, 1_000);
        }
        grid.validate().unwrap();
    }

    #[test]
    fn warmup_grids_round_trip_and_old_documents_still_parse() {
        let grid = ScenarioGrid::new(Scenario::quick_test(
            Benchmark::Barnes,
            AllocationPolicy::Baseline,
        ))
        .accesses(vec![500])
        .warmup(2_000);
        let text = grid.to_toml().unwrap();
        assert!(text.contains("[warmup]"), "{text}");
        assert_eq!(ScenarioGrid::from_toml(&text).unwrap(), grid);

        // A document written before the warmup/accesses fields existed
        // has neither key; it must keep parsing with the defaults.
        let plain = ScenarioGrid::new(Scenario::quick_test(
            Benchmark::Barnes,
            AllocationPolicy::Baseline,
        ));
        let stripped: String = plain
            .to_toml()
            .unwrap()
            .lines()
            .filter(|l| !l.starts_with("accesses = ") && !l.starts_with("warmup_accesses = "))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(!stripped.contains("warmup"));
        let parsed = ScenarioGrid::from_toml(&stripped).unwrap();
        assert_eq!(parsed, plain);
        assert_eq!(parsed.base.warmup_accesses, 0);
        assert!(parsed.warmup.is_none());
    }

    #[test]
    fn accesses_axis_over_a_trace_replay_is_rejected() {
        let mut base = Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline);
        base.workload =
            WorkloadSpec::trace_file("capture.trace", allarm_workloads::TraceFormat::Binary);
        let grid = ScenarioGrid::new(base).accesses(vec![100, 200]);
        let err = grid.validate().unwrap_err();
        assert_eq!(err.field(), "accesses");
        assert!(err.reason().contains("trace"), "{err}");
    }

    #[test]
    fn accesses_axis_over_a_v2_trace_replay_is_accepted() {
        use allarm_workloads::{tracefile, TraceFormat, TraceGenerator};
        let dir = std::env::temp_dir().join(format!("allarm-grid-v2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("capture.btrace");
        let recorded = TraceGenerator::new(2, 100, 3).generate(Benchmark::Barnes);
        tracefile::write_trace_file_framed(&path, &recorded, TraceFormat::BinaryV2, 32).unwrap();

        let mut base = Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline);
        base.workload = WorkloadSpec::trace_file(path.to_string_lossy(), TraceFormat::BinaryV2);
        let grid = ScenarioGrid::new(base).accesses(vec![50, 100]);
        // v2 frames support real prefix truncation, so the axis is allowed…
        grid.validate().unwrap();
        let points = grid.expand();
        // …and actually shortens each point's replay.
        assert_eq!(points[0].workload.accesses().unwrap(), 50);
        assert_eq!(points[1].workload.accesses().unwrap(), 100);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn benchmark_axis_over_a_trace_replay_is_rejected() {
        let mut base = Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline);
        base.workload =
            WorkloadSpec::trace_file("capture.trace", allarm_workloads::TraceFormat::Binary);
        let grid = ScenarioGrid::new(base).benchmarks(vec![Benchmark::Barnes, Benchmark::X264]);
        let err = grid.validate().unwrap_err();
        assert_eq!(err.field(), "benchmarks");
        assert!(err.reason().contains("trace"), "{err}");
        // Direct `expand` callers (who skipped `validate`) must not get N
        // byte-identical rows under N labels: the axis collapses to the
        // one honest point.
        assert_eq!(grid.expand().len(), 1);
    }

    #[test]
    fn grid_validate_covers_every_point() {
        let mut grid = ScenarioGrid::new(Scenario::quick_test(
            Benchmark::Barnes,
            AllocationPolicy::Baseline,
        ));
        grid.validate().unwrap();
        // A coverage whose geometry collapses to zero sets must be caught.
        grid.pf_coverages = vec![512 * 1024, 2 * 64];
        assert!(grid.validate().is_err());
    }
}

//! The job subsystem: a library-owned scheduler over the [`BatchRunner`].
//!
//! Until now only the `scenario_run` binary drove batches; serving
//! simulations to concurrent clients needs the *library* to own the
//! runner. A [`JobScheduler`] accepts validated scenario sets as **jobs**,
//! applies admission control (a bounded queue — work beyond
//! [`SchedulerConfig::max_queue_depth`] is rejected with a typed
//! [`SubmitError::QueueFull`] instead of growing memory without bound),
//! and executes them on a fixed pool of worker threads, each feeding a
//! [`BatchRunner`] with a per-job `sim_threads` budget.
//!
//! Results stream: every completed grid row is encoded as one JSONL line —
//! the exact [`BatchEntry::jsonl_line`] bytes the file sinks write, so a
//! job's streamed output is byte-identical to `scenario_run --output` on
//! the same document — and appended to the job's in-memory row log, where
//! [`JobScheduler::wait_rows`] readers block until new rows land or the
//! job reaches a terminal state. Jobs can be cancelled between grid rows
//! ([`JobScheduler::cancel`]); rows recorded before the cancellation are
//! final.
//!
//! The scheduler is `Arc`-shared and fully thread-safe; the HTTP layer in
//! `crates/server` is one front door, in-process embedding is another.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use allarm_types::error::ConfigError;

use crate::batch::{BatchEntry, BatchRunner, ResultSink, RunOutcome};
use crate::scenario::Scenario;

/// Identifies one submitted job. Ids are small integers assigned in
/// submission order and never reused within a scheduler's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing the job's rows.
    Running,
    /// Every row completed and was recorded.
    Done,
    /// The run aborted with an error (see [`JobStatus::error`]).
    Failed,
    /// Cancelled before every row completed; recorded rows are final.
    Cancelled,
}

impl JobState {
    /// The lowercase wire name of the state (`"queued"`, `"running"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// True once the job can make no further progress.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// A point-in-time snapshot of one job's progress.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// The job's id.
    pub id: JobId,
    /// Current lifecycle state.
    pub state: JobState,
    /// Rows recorded so far (== rows streamable right now).
    pub rows_completed: usize,
    /// Rows the job's document expands to.
    pub rows_total: usize,
    /// The failure reason, when `state` is [`JobState::Failed`].
    pub error: Option<String>,
}

/// Sizing of a [`JobScheduler`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Worker threads, i.e. jobs executing concurrently. `0` starts no
    /// workers — jobs queue forever — which makes admission-control and
    /// queued-cancellation behaviour deterministic under test.
    pub workers: usize,
    /// The thread budget handed to each job's [`BatchRunner`] (split
    /// between scenario-level parallelism and per-run `sim_threads`
    /// shards; `0` means all available hardware threads). Results are
    /// byte-identical for every value.
    pub sim_threads_per_job: usize,
    /// Jobs allowed to sit in the queue (excluding running ones); a
    /// submission beyond this depth is rejected with
    /// [`SubmitError::QueueFull`].
    pub max_queue_depth: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 2,
            sim_threads_per_job: 1,
            max_queue_depth: 16,
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// A scenario in the set failed validation.
    Invalid(ConfigError),
    /// The queue already holds `max_queue_depth` jobs — the typed
    /// 429-style signal; retry after a queued job drains.
    QueueFull {
        /// The configured depth that was reached.
        depth: usize,
    },
    /// The scheduler is shutting down and accepts no new work.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Invalid(e) => write!(f, "{e}"),
            SubmitError::QueueFull { depth } => {
                write!(f, "job queue is full ({depth} job(s) queued) — retry later")
            }
            SubmitError::ShuttingDown => write!(f, "scheduler is shutting down"),
        }
    }
}

/// A batch of result rows returned by [`JobScheduler::wait_rows`].
#[derive(Debug, Clone, PartialEq)]
pub struct RowsChunk {
    /// JSONL lines (no trailing newline each), in grid-row order,
    /// starting at the `from` index the caller passed.
    pub rows: Vec<String>,
    /// The job's state when the snapshot was taken.
    pub state: JobState,
    /// True once the job is terminal *and* every recorded row has been
    /// returned — the stream is over.
    pub done: bool,
}

/// Aggregate counters for the `/metrics` endpoint (and anyone else).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerMetrics {
    /// Jobs currently queued.
    pub jobs_queued: usize,
    /// Jobs currently running.
    pub jobs_running: usize,
    /// Jobs that completed every row.
    pub jobs_done: usize,
    /// Jobs that failed.
    pub jobs_failed: usize,
    /// Jobs cancelled before completion.
    pub jobs_cancelled: usize,
    /// Submissions rejected by admission control.
    pub jobs_rejected_total: u64,
    /// Grid rows recorded across all jobs, ever.
    pub rows_completed_total: u64,
}

struct Job {
    scenarios: Arc<[Scenario]>,
    state: JobState,
    rows: Vec<Arc<str>>,
    error: Option<String>,
    cancel: Arc<AtomicBool>,
}

struct Inner {
    jobs: Vec<Job>,
    queue: VecDeque<usize>,
    shutdown: bool,
    rows_completed_total: u64,
    jobs_rejected_total: u64,
}

struct Shared {
    inner: Mutex<Inner>,
    /// Wakes idle workers when work arrives or shutdown is flagged.
    work: Condvar,
    /// Wakes row streamers and status pollers on any job progress.
    progress: Condvar,
}

/// The scheduler: admission control, a job queue, and a worker pool that
/// feeds the [`BatchRunner`]. See the module docs for the full story.
///
/// # Examples
///
/// ```
/// use allarm_core::{AllocationPolicy, JobScheduler, JobState, Scenario, SchedulerConfig};
/// use allarm_workloads::Benchmark;
///
/// let scheduler = JobScheduler::start(SchedulerConfig::default());
/// let scenario = Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Allarm)
///     .with_accesses(500);
/// let id = scheduler.submit(vec![scenario]).unwrap();
/// let status = scheduler.wait_terminal(id).unwrap();
/// assert_eq!(status.state, JobState::Done);
/// assert_eq!(status.rows_completed, 1);
/// ```
pub struct JobScheduler {
    shared: Arc<Shared>,
    config: SchedulerConfig,
}

impl fmt::Debug for JobScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobScheduler")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl JobScheduler {
    /// Starts the scheduler: spawns `config.workers` worker threads (which
    /// idle on a condvar until jobs arrive) and returns the handle. The
    /// handle is cheap to share behind an [`Arc`].
    pub fn start(config: SchedulerConfig) -> Self {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                jobs: Vec::new(),
                queue: VecDeque::new(),
                shutdown: false,
                rows_completed_total: 0,
                jobs_rejected_total: 0,
            }),
            work: Condvar::new(),
            progress: Condvar::new(),
        });
        let runner_threads = config.sim_threads_per_job;
        for _ in 0..config.workers {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared, runner_threads));
        }
        JobScheduler { shared, config }
    }

    /// The sizing this scheduler was started with.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Validates and admits a job.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] if any scenario fails validation (nothing
    /// is queued), [`SubmitError::QueueFull`] past the configured depth,
    /// [`SubmitError::ShuttingDown`] after [`JobScheduler::shutdown`].
    pub fn submit(&self, scenarios: Vec<Scenario>) -> Result<JobId, SubmitError> {
        for scenario in &scenarios {
            scenario.validate().map_err(SubmitError::Invalid)?;
        }
        let mut inner = self.shared.inner.lock().unwrap();
        if inner.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if inner.queue.len() >= self.config.max_queue_depth {
            inner.jobs_rejected_total += 1;
            return Err(SubmitError::QueueFull {
                depth: self.config.max_queue_depth,
            });
        }
        let index = inner.jobs.len();
        inner.jobs.push(Job {
            scenarios: scenarios.into(),
            state: JobState::Queued,
            rows: Vec::new(),
            error: None,
            cancel: Arc::new(AtomicBool::new(false)),
        });
        inner.queue.push_back(index);
        self.shared.work.notify_one();
        Ok(JobId(index as u64))
    }

    /// A snapshot of one job's progress, or `None` for an unknown id.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let inner = self.shared.inner.lock().unwrap();
        inner.jobs.get(id.0 as usize).map(|job| snapshot(id, job))
    }

    /// Requests cancellation and returns the resulting status, or `None`
    /// for an unknown id. A queued job is cancelled immediately; a running
    /// job stops **between grid rows** (rows already recorded stay valid,
    /// the in-flight row finishes computing but is only recorded if its
    /// predecessors all were); a terminal job is left as it ended.
    pub fn cancel(&self, id: JobId) -> Option<JobStatus> {
        let mut inner = self.shared.inner.lock().unwrap();
        let index = id.0 as usize;
        inner.jobs.get(index)?;
        let job = &mut inner.jobs[index];
        match job.state {
            JobState::Queued => {
                job.state = JobState::Cancelled;
                job.cancel.store(true, Ordering::Relaxed);
                inner.queue.retain(|&queued| queued != index);
                self.shared.progress.notify_all();
            }
            JobState::Running => job.cancel.store(true, Ordering::Relaxed),
            _ => {}
        }
        Some(snapshot(id, &inner.jobs[index]))
    }

    /// Blocks until the job has rows beyond `from` or is terminal, then
    /// returns the new rows and whether the stream is over. Returns `None`
    /// for an unknown id.
    ///
    /// Streaming a whole job is a loop:
    ///
    /// ```ignore
    /// let mut from = 0;
    /// loop {
    ///     let chunk = scheduler.wait_rows(id, from)?;
    ///     for row in &chunk.rows { writeln!(out, "{row}")?; }
    ///     from += chunk.rows.len();
    ///     if chunk.done { break; }
    /// }
    /// ```
    pub fn wait_rows(&self, id: JobId, from: usize) -> Option<RowsChunk> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            let job = inner.jobs.get(id.0 as usize)?;
            if job.rows.len() > from || job.state.is_terminal() {
                let rows: Vec<String> = job.rows[from.min(job.rows.len())..]
                    .iter()
                    .map(|r| r.to_string())
                    .collect();
                let state = job.state;
                return Some(RowsChunk {
                    done: state.is_terminal(),
                    rows,
                    state,
                });
            }
            inner = self.shared.progress.wait(inner).unwrap();
        }
    }

    /// Blocks until the job reaches a terminal state and returns its final
    /// status, or `None` for an unknown id.
    pub fn wait_terminal(&self, id: JobId) -> Option<JobStatus> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            let job = inner.jobs.get(id.0 as usize)?;
            if job.state.is_terminal() {
                return Some(snapshot(id, job));
            }
            inner = self.shared.progress.wait(inner).unwrap();
        }
    }

    /// Current aggregate counters.
    pub fn metrics(&self) -> SchedulerMetrics {
        let inner = self.shared.inner.lock().unwrap();
        let mut m = SchedulerMetrics {
            jobs_rejected_total: inner.jobs_rejected_total,
            rows_completed_total: inner.rows_completed_total,
            ..SchedulerMetrics::default()
        };
        for job in &inner.jobs {
            match job.state {
                JobState::Queued => m.jobs_queued += 1,
                JobState::Running => m.jobs_running += 1,
                JobState::Done => m.jobs_done += 1,
                JobState::Failed => m.jobs_failed += 1,
                JobState::Cancelled => m.jobs_cancelled += 1,
            }
        }
        m
    }

    /// Stops accepting submissions, flags every queued/running job for
    /// cancellation, and wakes the workers so they exit once their current
    /// row finishes. Idempotent.
    pub fn shutdown(&self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.shutdown = true;
        let queued: Vec<usize> = inner.queue.drain(..).collect();
        for index in queued {
            inner.jobs[index].state = JobState::Cancelled;
        }
        for job in &inner.jobs {
            job.cancel.store(true, Ordering::Relaxed);
        }
        self.shared.work.notify_all();
        self.shared.progress.notify_all();
    }
}

impl Drop for JobScheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn snapshot(id: JobId, job: &Job) -> JobStatus {
    JobStatus {
        id,
        state: job.state,
        rows_completed: job.rows.len(),
        rows_total: job.scenarios.len(),
        error: job.error.clone(),
    }
}

/// The sink a worker hands its job's [`BatchRunner`]: each ordered row is
/// encoded once ([`BatchEntry::jsonl_line`]) and appended to the job's row
/// log under the scheduler lock, waking any streaming readers.
struct JobSink<'a> {
    shared: &'a Shared,
    index: usize,
}

impl ResultSink for JobSink<'_> {
    fn record(&mut self, entry: &BatchEntry) {
        let line: Arc<str> = entry.jsonl_line().into();
        let mut inner = self.shared.inner.lock().unwrap();
        inner.jobs[self.index].rows.push(line);
        inner.rows_completed_total += 1;
        self.shared.progress.notify_all();
    }
}

fn worker_loop(shared: &Shared, runner_threads: usize) {
    loop {
        // Claim the next queued job (or exit on shutdown).
        let (index, scenarios, cancel) = {
            let mut inner = shared.inner.lock().unwrap();
            loop {
                if inner.shutdown {
                    return;
                }
                if let Some(index) = inner.queue.pop_front() {
                    let job = &mut inner.jobs[index];
                    job.state = JobState::Running;
                    shared.progress.notify_all();
                    break (index, Arc::clone(&job.scenarios), Arc::clone(&job.cancel));
                }
                inner = shared.work.wait(inner).unwrap();
            }
        };

        let runner = BatchRunner::with_threads(resolve_threads(runner_threads));
        let mut sink = JobSink { shared, index };
        let result = runner.run_with_sink_cancellable(&scenarios, &mut sink, &cancel);

        let mut inner = shared.inner.lock().unwrap();
        let job = &mut inner.jobs[index];
        match result {
            Ok(RunOutcome::Completed) => job.state = JobState::Done,
            Ok(RunOutcome::Cancelled) => job.state = JobState::Cancelled,
            // submit() validated everything, so this only fires if e.g. a
            // trace file vanished between admission and execution.
            Err(e) => {
                job.state = JobState::Failed;
                job.error = Some(e.to_string());
            }
        }
        shared.progress.notify_all();
    }
}

/// `0` means "all available hardware threads", mirroring `SimThreads`.
fn resolve_threads(configured: usize) -> usize {
    match configured {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{BatchRunner, JsonlSink};
    use crate::scenario::ScenarioGrid;
    use allarm_coherence::AllocationPolicy;
    use allarm_workloads::Benchmark;

    fn small_grid(accesses: usize) -> Vec<Scenario> {
        ScenarioGrid::new(
            Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline)
                .with_accesses(accesses),
        )
        .benchmarks(vec![Benchmark::Barnes, Benchmark::Cholesky])
        .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm])
        .expand()
    }

    fn reference_jsonl(scenarios: &[Scenario]) -> String {
        let mut sink = JsonlSink::new();
        BatchRunner::with_threads(1)
            .run_with_sink(scenarios, &mut sink)
            .unwrap();
        sink.into_string()
    }

    #[test]
    fn a_job_streams_rows_byte_identical_to_the_file_sinks() {
        let scenarios = small_grid(400);
        let reference = reference_jsonl(&scenarios);
        let scheduler = JobScheduler::start(SchedulerConfig::default());
        let id = scheduler.submit(scenarios.clone()).unwrap();

        // Stream rows exactly as the HTTP layer would.
        let mut streamed = String::new();
        let mut from = 0;
        loop {
            let chunk = scheduler.wait_rows(id, from).unwrap();
            for row in &chunk.rows {
                streamed.push_str(row);
                streamed.push('\n');
            }
            from += chunk.rows.len();
            if chunk.done {
                assert_eq!(chunk.state, JobState::Done);
                break;
            }
        }
        assert_eq!(streamed, reference);

        let status = scheduler.status(id).unwrap();
        assert_eq!(status.state, JobState::Done);
        assert_eq!(status.rows_completed, scenarios.len());
        assert_eq!(status.rows_total, scenarios.len());
        assert_eq!(status.error, None);
    }

    #[test]
    fn concurrent_jobs_both_complete_under_the_thread_budget() {
        let a = small_grid(400);
        let mut b = small_grid(700);
        for s in &mut b {
            s.name = format!("b/{}", s.name);
        }
        let (ref_a, ref_b) = (reference_jsonl(&a), reference_jsonl(&b));
        let scheduler = JobScheduler::start(SchedulerConfig {
            workers: 2,
            sim_threads_per_job: 1,
            max_queue_depth: 4,
        });
        let id_a = scheduler.submit(a).unwrap();
        let id_b = scheduler.submit(b).unwrap();
        assert_ne!(id_a, id_b);
        assert_eq!(scheduler.wait_terminal(id_a).unwrap().state, JobState::Done);
        assert_eq!(scheduler.wait_terminal(id_b).unwrap().state, JobState::Done);
        for (id, reference) in [(id_a, ref_a), (id_b, ref_b)] {
            let chunk = scheduler.wait_rows(id, 0).unwrap();
            let streamed: String = chunk.rows.iter().map(|r| format!("{r}\n")).collect();
            assert_eq!(streamed, reference);
        }
        let m = scheduler.metrics();
        assert_eq!(m.jobs_done, 2);
        assert_eq!(m.rows_completed_total, 8);
    }

    #[test]
    fn admission_control_rejects_past_the_configured_depth() {
        // workers: 0 keeps everything queued, so the depth check is
        // deterministic.
        let scheduler = JobScheduler::start(SchedulerConfig {
            workers: 0,
            sim_threads_per_job: 1,
            max_queue_depth: 2,
        });
        let one = || vec![small_grid(300).remove(0)];
        scheduler.submit(one()).unwrap();
        scheduler.submit(one()).unwrap();
        let err = scheduler.submit(one()).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull { depth: 2 });
        assert!(err.to_string().contains("queue is full"), "{err}");
        let m = scheduler.metrics();
        assert_eq!(m.jobs_queued, 2);
        assert_eq!(m.jobs_rejected_total, 1);

        // Cancelling a queued job frees its slot.
        scheduler.cancel(JobId(0)).unwrap();
        assert_eq!(
            scheduler.status(JobId(0)).unwrap().state,
            JobState::Cancelled
        );
        scheduler.submit(one()).unwrap();
    }

    #[test]
    fn invalid_scenarios_are_rejected_before_queueing() {
        let scheduler = JobScheduler::start(SchedulerConfig {
            workers: 0,
            ..SchedulerConfig::default()
        });
        let mut bad = small_grid(300);
        bad[1].machine.l2.ways = 0;
        let err = scheduler.submit(bad).unwrap_err();
        assert!(matches!(err, SubmitError::Invalid(_)));
        assert_eq!(scheduler.metrics().jobs_queued, 0);
        assert_eq!(scheduler.status(JobId(0)), None);
    }

    #[test]
    fn cancelling_a_running_job_stops_between_rows() {
        // A single worker and a job with many modest rows: cancel as soon
        // as the first row lands, then check the job ends Cancelled with a
        // correct prefix recorded (or, in the worst scheduling case, Done
        // — but never Failed, and never with corrupt rows).
        let scenarios: Vec<Scenario> = ScenarioGrid::new(
            Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline)
                .with_accesses(4_000),
        )
        .benchmarks(vec![
            Benchmark::Barnes,
            Benchmark::Cholesky,
            Benchmark::Dedup,
            Benchmark::X264,
        ])
        .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm])
        .expand();
        let reference = reference_jsonl(&scenarios);
        let scheduler = JobScheduler::start(SchedulerConfig {
            workers: 1,
            sim_threads_per_job: 1,
            max_queue_depth: 4,
        });
        let id = scheduler.submit(scenarios).unwrap();
        let first = scheduler.wait_rows(id, 0).unwrap();
        assert!(!first.rows.is_empty());
        scheduler.cancel(id).unwrap();
        let status = scheduler.wait_terminal(id).unwrap();
        assert!(
            matches!(status.state, JobState::Cancelled | JobState::Done),
            "{:?}",
            status.state
        );
        let chunk = scheduler.wait_rows(id, 0).unwrap();
        let streamed: String = chunk.rows.iter().map(|r| format!("{r}\n")).collect();
        assert!(reference.starts_with(&streamed));
        if status.state == JobState::Cancelled {
            assert!(status.rows_completed < status.rows_total);
        }

        // The scheduler stays healthy for the next job.
        let next = scheduler.submit(small_grid(300)).unwrap();
        assert_eq!(scheduler.wait_terminal(next).unwrap().state, JobState::Done);
    }

    #[test]
    fn shutdown_rejects_new_work_and_cancels_queued_jobs() {
        let scheduler = JobScheduler::start(SchedulerConfig {
            workers: 0,
            ..SchedulerConfig::default()
        });
        let id = scheduler.submit(small_grid(300)).unwrap();
        scheduler.shutdown();
        assert_eq!(scheduler.status(id).unwrap().state, JobState::Cancelled);
        assert_eq!(
            scheduler.submit(small_grid(300)).unwrap_err(),
            SubmitError::ShuttingDown
        );
    }

    #[test]
    fn unknown_ids_answer_none_everywhere() {
        let scheduler = JobScheduler::start(SchedulerConfig {
            workers: 0,
            ..SchedulerConfig::default()
        });
        assert_eq!(scheduler.status(JobId(7)), None);
        assert_eq!(scheduler.cancel(JobId(7)), None);
        assert_eq!(scheduler.wait_rows(JobId(7), 0), None);
        assert_eq!(scheduler.wait_terminal(JobId(7)), None);
    }
}

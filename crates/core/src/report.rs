//! Plain-text table formatting for the figure-regeneration binaries.
//!
//! The paper's figures are bar charts over the eight benchmarks (plus a
//! geometric mean). The harness binaries print the same series as aligned
//! text tables; this module holds the small formatting helpers they share so
//! every figure is rendered consistently.

use allarm_types::stats::geometric_mean;
use std::fmt::Write as _;

/// A single named series of per-benchmark values, as plotted in one of the
/// paper's bar charts.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureSeries {
    /// Series label (e.g. "speedup" or "NoC").
    pub label: String,
    /// `(benchmark, value)` pairs in figure order.
    pub values: Vec<(String, f64)>,
    /// Whether to append a geometric-mean row (the paper adds "geomean" to
    /// most figures).
    pub with_geomean: bool,
}

impl FigureSeries {
    /// Creates a series with a geometric-mean row.
    pub fn new(label: impl Into<String>) -> Self {
        FigureSeries {
            label: label.into(),
            values: Vec::new(),
            with_geomean: true,
        }
    }

    /// Creates a series without a geometric-mean row (Fig. 3d and 3g do not
    /// show one).
    pub fn without_geomean(label: impl Into<String>) -> Self {
        FigureSeries {
            with_geomean: false,
            ..FigureSeries::new(label)
        }
    }

    /// Appends one benchmark's value.
    pub fn push(&mut self, benchmark: impl Into<String>, value: f64) {
        self.values.push((benchmark.into(), value));
    }

    /// The geometric mean of the series, if it is well-defined.
    pub fn geomean(&self) -> Option<f64> {
        let vals: Vec<f64> = self.values.iter().map(|(_, v)| *v).collect();
        geometric_mean(&vals)
    }
}

/// Renders one or more series as an aligned text table with one row per
/// benchmark (and a final geomean row when requested by every series).
///
/// # Panics
///
/// Panics if the series do not all cover the same benchmarks in the same
/// order.
pub fn render_table(title: &str, series: &[FigureSeries]) -> String {
    assert!(!series.is_empty(), "a table needs at least one series");
    let benchmarks: Vec<&str> = series[0].values.iter().map(|(b, _)| b.as_str()).collect();
    for s in series {
        let names: Vec<&str> = s.values.iter().map(|(b, _)| b.as_str()).collect();
        assert_eq!(
            names, benchmarks,
            "all series must cover the same benchmarks"
        );
    }

    let name_width = benchmarks
        .iter()
        .map(|b| b.len())
        .chain(std::iter::once("geomean".len()))
        .max()
        .unwrap_or(8)
        .max(8);
    let col_width = series
        .iter()
        .map(|s| s.label.len())
        .max()
        .unwrap_or(8)
        .max(10);

    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = write!(out, "{:<name_width$}", "benchmark");
    for s in series {
        let _ = write!(out, "  {:>col_width$}", s.label);
    }
    out.push('\n');

    for (row, bench) in benchmarks.iter().enumerate() {
        let _ = write!(out, "{bench:<name_width$}");
        for s in series {
            let _ = write!(out, "  {:>col_width$.3}", s.values[row].1);
        }
        out.push('\n');
    }

    if series.iter().all(|s| s.with_geomean) {
        let _ = write!(out, "{:<name_width$}", "geomean");
        for s in series {
            match s.geomean() {
                Some(g) => {
                    let _ = write!(out, "  {:>col_width$.3}", g);
                }
                None => {
                    let _ = write!(out, "  {:>col_width$}", "n/a");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a sweep table: one row per probe-filter size, one column per
/// labelled series (used for Fig. 3h and Fig. 4).
pub fn render_sweep_table(title: &str, row_labels: &[String], series: &[FigureSeries]) -> String {
    assert!(!series.is_empty(), "a table needs at least one series");
    for s in series {
        assert_eq!(
            s.values.len(),
            row_labels.len(),
            "series {} does not cover every row",
            s.label
        );
    }
    let name_width = row_labels.iter().map(|l| l.len()).max().unwrap_or(6).max(6);
    let col_width = series
        .iter()
        .map(|s| s.label.len())
        .max()
        .unwrap_or(8)
        .max(10);

    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = write!(out, "{:<name_width$}", "config");
    for s in series {
        let _ = write!(out, "  {:>col_width$}", s.label);
    }
    out.push('\n');
    for (row, label) in row_labels.iter().enumerate() {
        let _ = write!(out, "{label:<name_width$}");
        for s in series {
            let _ = write!(out, "  {:>col_width$.3}", s.values[row].1);
        }
        out.push('\n');
    }
    out
}

/// Formats a probe-filter coverage in the "512kB" style the paper uses.
pub fn format_coverage(bytes: u64) -> String {
    format!("{}kB", bytes / 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accumulates_and_computes_geomean() {
        let mut s = FigureSeries::new("speedup");
        s.push("a", 1.0);
        s.push("b", 4.0);
        let g = s.geomean().unwrap();
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn table_contains_all_rows_and_geomean() {
        let mut s = FigureSeries::new("speedup");
        s.push("barnes", 1.15);
        s.push("x264", 1.05);
        let table = render_table("Fig 3a", &[s]);
        assert!(table.contains("barnes"));
        assert!(table.contains("x264"));
        assert!(table.contains("geomean"));
        assert!(table.contains("1.150"));
    }

    #[test]
    fn table_without_geomean_omits_the_row() {
        let mut s = FigureSeries::without_geomean("messages");
        s.push("barnes", 2.4);
        let table = render_table("Fig 3d", &[s]);
        assert!(!table.contains("geomean"));
    }

    #[test]
    fn multi_series_tables_align_rows() {
        let mut a = FigureSeries::new("NoC");
        a.push("barnes", 0.92);
        let mut b = FigureSeries::new("PF");
        b.push("barnes", 0.85);
        let table = render_table("Fig 3f", &[a, b]);
        assert!(table.contains("NoC"));
        assert!(table.contains("PF"));
    }

    #[test]
    #[should_panic(expected = "same benchmarks")]
    fn mismatched_series_are_rejected() {
        let mut a = FigureSeries::new("x");
        a.push("barnes", 1.0);
        let mut b = FigureSeries::new("y");
        b.push("cholesky", 1.0);
        render_table("bad", &[a, b]);
    }

    #[test]
    fn sweep_table_renders_rows_per_size() {
        let mut s = FigureSeries::new("speedup");
        s.push("512kB", 1.0);
        s.push("256kB", 0.97);
        let table = render_sweep_table(
            "Fig 3h barnes",
            &["512kB".to_string(), "256kB".to_string()],
            &[s],
        );
        assert!(table.contains("512kB"));
        assert!(table.contains("0.970"));
    }

    #[test]
    fn coverage_formatting() {
        assert_eq!(format_coverage(512 * 1024), "512kB");
        assert_eq!(format_coverage(32 * 1024), "32kB");
    }
}

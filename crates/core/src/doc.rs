//! Scenario-document parsing: the one shared path every front door uses.
//!
//! A *scenario document* is the serde surface of [`Scenario`] /
//! [`ScenarioGrid`] rendered as TOML or JSON — the format checked in under
//! `scenarios/`, fed to `scenario_run` and `trace_tool`, and POSTed to the
//! HTTP server. All of them parse through this module, so a malformed
//! document produces the identical error (naming the format the text was
//! parsed as) no matter which door it came in through.

use std::path::Path;

use serde::Deserialize as _;

use crate::scenario::{Scenario, ScenarioGrid};

/// A parsed scenario document: either a single scenario or a sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioDoc {
    /// One scenario.
    Single(Box<Scenario>),
    /// A grid of scenarios.
    Grid(Box<ScenarioGrid>),
}

impl ScenarioDoc {
    /// The scenarios this document expands to.
    pub fn expand(&self) -> Vec<Scenario> {
        match self {
            ScenarioDoc::Single(s) => vec![(**s).clone()],
            ScenarioDoc::Grid(g) => g.expand(),
        }
    }

    /// Validates the document: the single scenario, or the whole grid —
    /// including axis-level checks a per-scenario pass cannot see, such as
    /// a benchmark sweep over a trace-replay base.
    ///
    /// # Errors
    ///
    /// Returns the first [`crate::ConfigError`] found.
    pub fn validate(&self) -> Result<(), crate::ConfigError> {
        match self {
            ScenarioDoc::Single(s) => s.validate(),
            ScenarioDoc::Grid(g) => g.validate(),
        }
    }

    /// Returns a copy with relative trace-file paths in the document's
    /// workload joined onto `dir` (the document's own directory), so a
    /// checked-in document can name its trace relative to itself and still
    /// run from any working directory.
    pub fn resolved_against(&self, dir: &Path) -> ScenarioDoc {
        match self {
            ScenarioDoc::Single(s) => {
                let mut s = (**s).clone();
                s.workload = s.workload.resolved_against(dir);
                ScenarioDoc::Single(Box::new(s))
            }
            ScenarioDoc::Grid(g) => {
                let mut g = (**g).clone();
                g.base.workload = g.base.workload.resolved_against(dir);
                ScenarioDoc::Grid(Box::new(g))
            }
        }
    }
}

/// Parses a scenario document from TOML or JSON (the caller picks, e.g. by
/// file extension — see [`load_scenario_doc`] — or by HTTP content type —
/// see [`sniff_is_json`]). A document whose *top level* has a `base` table
/// is a [`ScenarioGrid`]; otherwise it is a single [`Scenario`]. (The
/// detection is structural — parsed, not substring-matched — so a scenario
/// merely *named* "base" is not misclassified.)
///
/// # Errors
///
/// Returns an error string describing the first malformed field, naming
/// the format the text was parsed as (so a mis-extensioned file points at
/// the real problem).
pub fn parse_scenario_doc(text: &str, is_toml: bool) -> Result<ScenarioDoc, String> {
    let fmt = if is_toml { "TOML" } else { "JSON" };
    let tree: serde::Value = if is_toml {
        toml::from_str(text)
            .map_err(|e| format!("invalid scenario document (parsed as {fmt}): {e}"))?
    } else {
        serde_json::from_str(text)
            .map_err(|e| format!("invalid scenario document (parsed as {fmt}): {e}"))?
    };
    if tree.get("base").is_some() {
        ScenarioGrid::from_value(&tree)
            .map(|g| ScenarioDoc::Grid(Box::new(g)))
            .map_err(|e| format!("invalid scenario grid (parsed as {fmt}): {e}"))
    } else {
        Scenario::from_value(&tree)
            .map(|s| ScenarioDoc::Single(Box::new(s)))
            .map_err(|e| format!("invalid scenario (parsed as {fmt}): {e}"))
    }
}

/// Guesses whether a scenario document without a path or content type is
/// JSON: both document shapes serialize as a JSON *object*, so a first
/// non-whitespace byte of `{` means JSON and anything else means TOML
/// (TOML documents start with a bare key or a `[table]` header). Used by
/// callers that receive bare text — e.g. an HTTP body with no
/// `Content-Type` — where [`load_scenario_doc`]'s extension sniff has
/// nothing to look at.
pub fn sniff_is_json(text: &str) -> bool {
    text.trim_start().starts_with('{')
}

/// Loads a scenario document from disk: parsed as JSON when the path ends
/// in `.json` **case-insensitively** (so `GRID.JSON` is not fed to the
/// TOML parser), TOML otherwise, with relative trace-file paths resolved
/// against the document's directory.
///
/// # Errors
///
/// Returns an error string (prefixed with the path) for unreadable files
/// or malformed documents.
pub fn load_scenario_doc(path: &str) -> Result<ScenarioDoc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let is_toml = !path.to_ascii_lowercase().ends_with(".json");
    let doc = parse_scenario_doc(&text, is_toml).map_err(|e| format!("{path}: {e}"))?;
    let dir = Path::new(path).parent().unwrap_or_else(|| Path::new("."));
    Ok(doc.resolved_against(dir))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use allarm_coherence::AllocationPolicy;
    use allarm_workloads::Benchmark;

    #[test]
    fn scenario_docs_parse_both_shapes() {
        let cfg = ExperimentConfig::quick_test();
        let single = cfg.scenario(Benchmark::Barnes, AllocationPolicy::Allarm);
        let doc = parse_scenario_doc(&single.to_toml().unwrap(), true).unwrap();
        assert_eq!(doc, ScenarioDoc::Single(Box::new(single.clone())));
        assert_eq!(doc.expand().len(), 1);

        let grid = crate::ScenarioGrid::new(single.clone())
            .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm]);
        let doc = parse_scenario_doc(&grid.to_toml().unwrap(), true).unwrap();
        assert_eq!(doc, ScenarioDoc::Grid(Box::new(grid.clone())));
        assert_eq!(doc.expand().len(), 2);

        // JSON forms too.
        let doc = parse_scenario_doc(&single.to_json(), false).unwrap();
        assert_eq!(doc.expand(), vec![single]);
    }

    #[test]
    fn malformed_documents_are_rejected_naming_the_assumed_format() {
        let err = parse_scenario_doc("nonsense", true).unwrap_err();
        assert!(err.contains("parsed as TOML"), "{err}");
        let err = parse_scenario_doc("{}", false).unwrap_err();
        assert!(err.contains("parsed as JSON"), "{err}");
    }

    #[test]
    fn bare_text_sniff_distinguishes_the_two_formats() {
        let cfg = ExperimentConfig::quick_test();
        let single = cfg.scenario(Benchmark::Barnes, AllocationPolicy::Allarm);
        assert!(sniff_is_json(&single.to_json()));
        assert!(sniff_is_json("\n\t  {\"name\": \"x\"}"));
        assert!(!sniff_is_json(&single.to_toml().unwrap()));
        assert!(!sniff_is_json("[base]\nname = \"x\""));
        assert!(!sniff_is_json(""));
    }

    #[test]
    fn json_extension_is_sniffed_case_insensitively() {
        let cfg = ExperimentConfig::quick_test();
        let single = cfg.scenario(Benchmark::Barnes, AllocationPolicy::Allarm);
        let dir = std::env::temp_dir().join(format!("allarm-core-doc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grid.JSON");
        std::fs::write(&path, single.to_json()).unwrap();
        let doc = load_scenario_doc(path.to_str().unwrap()).unwrap();
        assert_eq!(doc.expand(), vec![single]);
        // A JSON payload under a .toml name fails, but the error now says
        // which parser ran.
        let toml_path = dir.join("grid.toml");
        std::fs::write(&toml_path, "{ not toml }").unwrap();
        let err = load_scenario_doc(toml_path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("parsed as TOML"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

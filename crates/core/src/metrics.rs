//! Simulation reports and baseline-vs-ALLARM comparisons.

use allarm_energy::DynamicEnergy;
use allarm_types::stats::{normalized, ratio};
use allarm_types::Nanos;
use serde::{Deserialize, Serialize};

/// Every metric the paper's figures draw on, for a single simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Workload name.
    pub workload: String,
    /// Allocation policy name (`"baseline"` or `"allarm"`).
    pub policy: String,
    /// Probe-filter coverage per node, in bytes.
    pub pf_coverage_bytes: u64,
    /// Simulated execution time (the makespan over all cores).
    pub runtime: Nanos,
    /// Total memory references replayed.
    pub total_accesses: u64,
    /// References that hit in an L1 data cache.
    pub l1_hits: u64,
    /// References that hit in a private L2.
    pub l2_hits: u64,
    /// References that missed the whole private hierarchy (Fig. 3e).
    pub l2_misses: u64,
    /// Requests processed by the directory controllers.
    pub directory_requests: u64,
    /// Directory requests from the directory's own affinity domain (Fig. 2).
    pub local_requests: u64,
    /// Directory requests from remote affinity domains (Fig. 2).
    pub remote_requests: u64,
    /// Probe-filter entries allocated.
    pub pf_allocations: u64,
    /// Probe-filter evictions (Fig. 3b, Fig. 4b/4e).
    pub pf_evictions: u64,
    /// Coherence messages sent processing probe-filter evictions (Fig. 3d).
    pub eviction_messages: u64,
    /// Cache copies lost to probe-filter eviction back-invalidations.
    pub eviction_invalidations: u64,
    /// Misses for which ALLARM skipped allocation.
    pub allarm_allocation_skips: u64,
    /// Total bytes moved on the on-chip network (Fig. 3c, Fig. 4c/4f).
    pub noc_bytes: u64,
    /// Total messages on the on-chip network.
    pub noc_messages: u64,
    /// DRAM line reads.
    pub dram_reads: u64,
    /// DRAM line writes.
    pub dram_writes: u64,
    /// ALLARM probes of the home node's local core (remote misses only).
    pub local_probes: u64,
    /// Local probes that found the line cached by the local core.
    pub local_probe_hits: u64,
    /// Local probes that stayed off the critical path (Fig. 3g).
    pub local_probes_hidden: u64,
    /// Read misses served by the node's shared LLC slice without a
    /// directory transaction. Zero on machines without an LLC.
    #[serde(default)]
    pub llc_hits: u64,
    /// Read misses that consulted the local slice and fell through to the
    /// home directory.
    #[serde(default)]
    pub llc_misses: u64,
    /// Clean capacity victims dropped from the LLC slices.
    #[serde(default)]
    pub llc_evictions: u64,
    /// Slice lines removed by directory-initiated invalidations (ownership
    /// transfers and probe-filter evictions).
    #[serde(default)]
    pub llc_invalidations: u64,
    /// Dynamic energy consumed by the NoC, probe filters and LLC slices
    /// (Fig. 3f reports the first two).
    pub energy: DynamicEnergy,
    /// Barrier-to-barrier rounds the sharded kernel executed. Miss-window
    /// batching exists to shrink this: the deeper the windows, the more
    /// coherence traffic each barrier crossing carries. Thread-count
    /// invariant, like every other field.
    #[serde(default)]
    pub rounds_executed: u64,
    /// Coherence events drained through the directory slices, summed over
    /// rounds (requests plus eviction notices).
    #[serde(default)]
    pub events_merged: u64,
    /// Deepest in-flight miss window any core reached
    /// (≤ `miss_window.depth`).
    #[serde(default)]
    pub max_window_depth: u32,
    /// Provenance: [`allarm_workloads::Workload::checksum`] of the replayed
    /// reference stream. For a trace-file replay this equals the checksum
    /// recorded in the file's header, so an externally-sourced run is
    /// verifiable — and a replay of a recorded workload produces a report
    /// byte-identical to the direct run's.
    pub workload_checksum: u64,
}

impl SimReport {
    /// The columns of [`SimReport::csv_row`], in order (the
    /// [`crate::batch::CsvFileSink`] header).
    pub const CSV_HEADER: &'static str = "workload,policy,pf_coverage_bytes,runtime_ns,\
         total_accesses,l1_hits,l2_hits,l2_misses,directory_requests,local_requests,\
         remote_requests,pf_allocations,pf_evictions,eviction_messages,\
         eviction_invalidations,allarm_allocation_skips,noc_bytes,noc_messages,\
         dram_reads,dram_writes,local_probes,local_probe_hits,local_probes_hidden,\
         llc_hits,llc_misses,llc_evictions,llc_invalidations,\
         noc_pj,probe_filter_pj,llc_pj,rounds_executed,events_merged,max_window_depth,\
         workload_checksum";

    /// Renders the report as one flat CSV row matching
    /// [`SimReport::CSV_HEADER`]. Workload and policy names never contain
    /// commas (they are benchmark/policy identifiers), so no quoting is
    /// applied here.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:016x}",
            self.workload,
            self.policy,
            self.pf_coverage_bytes,
            self.runtime.as_u64(),
            self.total_accesses,
            self.l1_hits,
            self.l2_hits,
            self.l2_misses,
            self.directory_requests,
            self.local_requests,
            self.remote_requests,
            self.pf_allocations,
            self.pf_evictions,
            self.eviction_messages,
            self.eviction_invalidations,
            self.allarm_allocation_skips,
            self.noc_bytes,
            self.noc_messages,
            self.dram_reads,
            self.dram_writes,
            self.local_probes,
            self.local_probe_hits,
            self.local_probes_hidden,
            self.llc_hits,
            self.llc_misses,
            self.llc_evictions,
            self.llc_invalidations,
            self.energy.noc_pj,
            self.energy.probe_filter_pj,
            self.energy.llc_pj,
            self.rounds_executed,
            self.events_merged,
            self.max_window_depth,
            self.workload_checksum,
        )
    }

    /// Fraction of directory requests issued by the directory's local core
    /// (the quantity plotted per benchmark in Fig. 2).
    pub fn local_fraction(&self) -> f64 {
        ratio(self.local_requests, self.directory_requests)
    }

    /// Fraction of directory requests issued by remote cores.
    pub fn remote_fraction(&self) -> f64 {
        ratio(self.remote_requests, self.directory_requests)
    }

    /// Average coherence messages per probe-filter eviction (Fig. 3d).
    pub fn messages_per_eviction(&self) -> f64 {
        ratio(self.eviction_messages, self.pf_evictions)
    }

    /// Fraction of ALLARM local probes that stayed off the critical path
    /// (Fig. 3g). Zero for baseline runs, which perform no local probes.
    pub fn hidden_probe_fraction(&self) -> f64 {
        ratio(self.local_probes_hidden, self.local_probes)
    }

    /// L1 + L2 hit rate over all references.
    pub fn hit_rate(&self) -> f64 {
        ratio(self.l1_hits + self.l2_hits, self.total_accesses)
    }

    /// L2 miss rate over all references.
    pub fn miss_rate(&self) -> f64 {
        ratio(self.l2_misses, self.total_accesses)
    }

    /// Fraction of slice-consulting read misses served by the node's
    /// shared LLC slice. Zero on machines without an LLC.
    pub fn llc_hit_rate(&self) -> f64 {
        ratio(self.llc_hits, self.llc_hits + self.llc_misses)
    }
}

/// A baseline run and an ALLARM run of the same workload on the same
/// machine, with the derived ratios the paper plots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// The baseline-policy run.
    pub baseline: SimReport,
    /// The ALLARM-policy run.
    pub allarm: SimReport,
}

impl Comparison {
    /// Creates a comparison from the two runs.
    ///
    /// # Panics
    ///
    /// Panics if the two reports are for different workloads.
    pub fn new(baseline: SimReport, allarm: SimReport) -> Self {
        assert_eq!(
            baseline.workload, allarm.workload,
            "comparison requires the same workload on both sides"
        );
        Comparison { baseline, allarm }
    }

    /// Speedup of ALLARM over the baseline (Fig. 3a): values above 1.0 mean
    /// ALLARM is faster.
    pub fn speedup(&self) -> f64 {
        if self.allarm.runtime.as_u64() == 0 {
            1.0
        } else {
            self.baseline.runtime.as_f64() / self.allarm.runtime.as_f64()
        }
    }

    /// Probe-filter evictions under ALLARM, normalised to the baseline
    /// (Fig. 3b): below 1.0 means fewer evictions.
    pub fn normalized_evictions(&self) -> f64 {
        normalized(
            self.allarm.pf_evictions as f64,
            self.baseline.pf_evictions as f64,
        )
    }

    /// Network traffic in bytes under ALLARM, normalised to the baseline
    /// (Fig. 3c).
    pub fn normalized_traffic(&self) -> f64 {
        normalized(self.allarm.noc_bytes as f64, self.baseline.noc_bytes as f64)
    }

    /// L2 misses under ALLARM, normalised to the baseline (Fig. 3e).
    pub fn normalized_l2_misses(&self) -> f64 {
        normalized(self.allarm.l2_misses as f64, self.baseline.l2_misses as f64)
    }

    /// NoC dynamic energy under ALLARM, normalised to the baseline (the
    /// "NoC" bars of Fig. 3f).
    pub fn normalized_noc_energy(&self) -> f64 {
        normalized(self.allarm.energy.noc_pj, self.baseline.energy.noc_pj)
    }

    /// Probe-filter dynamic energy under ALLARM, normalised to the baseline
    /// (the "PF" bars of Fig. 3f).
    pub fn normalized_pf_energy(&self) -> f64 {
        normalized(
            self.allarm.energy.probe_filter_pj,
            self.baseline.energy.probe_filter_pj,
        )
    }

    /// Average messages per probe-filter eviction in the baseline run
    /// (Fig. 3d is measured on the baseline system).
    pub fn baseline_messages_per_eviction(&self) -> f64 {
        self.baseline.messages_per_eviction()
    }

    /// Fraction of ALLARM remote requests whose local probe stayed off the
    /// critical path (Fig. 3g).
    pub fn hidden_probe_fraction(&self) -> f64 {
        self.allarm.hidden_probe_fraction()
    }

    /// The local-access fraction of the baseline run (Fig. 2; the paper
    /// measures it on the unmodified system).
    pub fn local_fraction(&self) -> f64 {
        self.baseline.local_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(workload: &str, policy: &str, runtime: u64) -> SimReport {
        SimReport {
            workload: workload.to_string(),
            policy: policy.to_string(),
            pf_coverage_bytes: 512 * 1024,
            runtime: Nanos::new(runtime),
            total_accesses: 1000,
            l1_hits: 800,
            l2_hits: 100,
            l2_misses: 100,
            directory_requests: 100,
            local_requests: 40,
            remote_requests: 60,
            pf_allocations: 90,
            pf_evictions: 50,
            eviction_messages: 150,
            eviction_invalidations: 30,
            allarm_allocation_skips: 0,
            noc_bytes: 10_000,
            noc_messages: 400,
            dram_reads: 90,
            dram_writes: 10,
            local_probes: 0,
            local_probe_hits: 0,
            local_probes_hidden: 0,
            llc_hits: 30,
            llc_misses: 70,
            llc_evictions: 5,
            llc_invalidations: 2,
            energy: DynamicEnergy {
                noc_pj: 100.0,
                probe_filter_pj: 60.0,
                llc_pj: 20.0,
            },
            rounds_executed: 12,
            events_merged: 250,
            max_window_depth: 8,
            workload_checksum: 0xdead_beef_0123_4567,
        }
    }

    #[test]
    fn csv_row_matches_header_arity_and_carries_the_checksum() {
        let r = report("barnes", "baseline", 10);
        let row = r.csv_row();
        assert_eq!(
            row.split(',').count(),
            SimReport::CSV_HEADER.split(',').count()
        );
        assert!(row.ends_with("deadbeef01234567"), "{row}");
    }

    #[test]
    fn fractions_and_rates() {
        let r = report("barnes", "baseline", 1_000_000);
        assert!((r.local_fraction() - 0.4).abs() < 1e-12);
        assert!((r.remote_fraction() - 0.6).abs() < 1e-12);
        assert!((r.messages_per_eviction() - 3.0).abs() < 1e-12);
        assert!((r.hit_rate() - 0.9).abs() < 1e-12);
        assert!((r.miss_rate() - 0.1).abs() < 1e-12);
        assert_eq!(r.hidden_probe_fraction(), 0.0);
        assert!((r.llc_hit_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn comparison_ratios() {
        let baseline = report("barnes", "baseline", 1_000_000);
        let mut allarm = report("barnes", "allarm", 900_000);
        allarm.pf_evictions = 25;
        allarm.noc_bytes = 9_000;
        allarm.l2_misses = 90;
        allarm.energy = DynamicEnergy {
            noc_pj: 90.0,
            probe_filter_pj: 45.0,
            llc_pj: 0.0,
        };
        let cmp = Comparison::new(baseline, allarm);
        assert!((cmp.speedup() - 1.0 / 0.9).abs() < 1e-9);
        assert!((cmp.normalized_evictions() - 0.5).abs() < 1e-12);
        assert!((cmp.normalized_traffic() - 0.9).abs() < 1e-12);
        assert!((cmp.normalized_l2_misses() - 0.9).abs() < 1e-12);
        assert!((cmp.normalized_noc_energy() - 0.9).abs() < 1e-12);
        assert!((cmp.normalized_pf_energy() - 0.75).abs() < 1e-12);
        assert!((cmp.local_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same workload")]
    fn mismatched_workloads_rejected() {
        let a = report("barnes", "baseline", 10);
        let b = report("cholesky", "allarm", 10);
        Comparison::new(a, b);
    }

    #[test]
    fn zero_baseline_evictions_with_zero_allarm_is_parity() {
        let mut baseline = report("x", "baseline", 10);
        let mut allarm = report("x", "allarm", 10);
        baseline.pf_evictions = 0;
        allarm.pf_evictions = 0;
        let cmp = Comparison::new(baseline, allarm);
        assert_eq!(cmp.normalized_evictions(), 1.0);
        assert_eq!(cmp.speedup(), 1.0);
    }
}

//! The per-core private cache hierarchy: L1D backed by an exclusive L2.
//!
//! The paper's cores have split 32 kB L1 caches and a private 256 kB
//! *exclusive* L2 (a victim cache for the L1). Instruction fetches are not
//! modelled — the evaluation figures are driven entirely by data traffic —
//! so the hierarchy here is L1D + L2. Exclusivity matters because it fixes
//! the total caching capacity per core (L1 + L2) that the probe filter must
//! cover with its 2x-of-L2 budget.

use crate::set_assoc::{EvictedLine, SetAssocCache};
use crate::state::CoherenceState;
use crate::stats::CacheStats;
use allarm_types::addr::LineAddr;
use allarm_types::config::CacheConfig;

/// Where a data access was satisfied, before any coherence action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Hit in the L1 data cache.
    L1Hit,
    /// Missed L1 but hit the private L2; the line is promoted back to L1
    /// (exclusive hierarchy).
    L2Hit,
    /// Missed the whole private hierarchy; the directory must be consulted.
    Miss,
}

impl AccessOutcome {
    /// True if the access never left the core's private hierarchy.
    pub fn is_hit(self) -> bool {
        !matches!(self, AccessOutcome::Miss)
    }
}

/// The coherence action a write requires when the line is present but not
/// writable, or absent entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceNeed {
    /// Line absent: issue a read request (GetS) to the home directory.
    ReadMiss,
    /// Line absent and the access is a store: issue a read-for-ownership
    /// (GetX) to the home directory.
    WriteMiss,
    /// Line present in a read-only state and the access is a store: issue an
    /// upgrade (GetX without data) to the home directory.
    Upgrade,
}

/// Result of a directory probe of this core's hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// The line is not cached by this core.
    Miss,
    /// The line is cached in the given state (after any requested downgrade
    /// or invalidation has been applied).
    Hit {
        /// The state the line was found in, before the probe's side effect.
        state: CoherenceState,
        /// Whether the copy held dirty data that the probe flushed.
        dirty: bool,
    },
}

/// A single core's private L1D + exclusive L2 hierarchy.
///
/// # Examples
///
/// ```
/// use allarm_cache::{CoreCaches, CoherenceState, AccessOutcome, CoherenceNeed};
/// use allarm_types::{config::MachineConfig, addr::LineAddr};
///
/// let cfg = MachineConfig::small_test();
/// let mut caches = CoreCaches::new(&cfg.l1d, &cfg.l2);
/// let line = LineAddr::new(100);
///
/// // A store to an uncached line needs a GetX.
/// assert_eq!(caches.coherence_need(line, true), Some(CoherenceNeed::WriteMiss));
/// caches.access(line, true);
/// caches.fill(line, CoherenceState::Modified);
/// assert_eq!(caches.access(line, true), AccessOutcome::L1Hit);
/// ```
#[derive(Debug, Clone)]
pub struct CoreCaches {
    l1d: SetAssocCache,
    l2: SetAssocCache,
    /// L2 lines displaced entirely out of the hierarchy since the last call
    /// to [`CoreCaches::take_capacity_victims`].
    pending_victims: Vec<EvictedLine>,
}

impl CoreCaches {
    /// Creates the hierarchy from L1D and L2 configurations.
    pub fn new(l1d: &CacheConfig, l2: &CacheConfig) -> Self {
        CoreCaches {
            l1d: SetAssocCache::new(l1d),
            l2: SetAssocCache::new(l2),
            pending_victims: Vec::new(),
        }
    }

    /// Performs a load (`write == false`) or store (`write == true`) lookup.
    ///
    /// This only models presence: permission checking is done separately via
    /// [`CoreCaches::coherence_need`] so the simulator can decide whether a
    /// directory transaction is required before committing the access.
    pub fn access(&mut self, line: LineAddr, write: bool) -> AccessOutcome {
        match self.l1d.lookup(line) {
            Some(state) => {
                if write && !state.can_write() {
                    // The store will be granted ownership by the directory;
                    // presence-wise this is still an L1 hit.
                }
                AccessOutcome::L1Hit
            }
            None => match self.l2.lookup(line) {
                Some(state) => {
                    // Exclusive hierarchy: promote to L1, removing from L2.
                    self.l2.remove_silently(line);
                    self.install_l1(line, state);
                    AccessOutcome::L2Hit
                }
                None => AccessOutcome::Miss,
            },
        }
    }

    /// Returns the coherence transaction (if any) the directory must perform
    /// for this access, given the line's current state in this hierarchy.
    pub fn coherence_need(&self, line: LineAddr, write: bool) -> Option<CoherenceNeed> {
        let state = self.state_of(line);
        match state {
            None => Some(if write {
                CoherenceNeed::WriteMiss
            } else {
                CoherenceNeed::ReadMiss
            }),
            Some(s) => {
                if write && !s.can_write() {
                    Some(CoherenceNeed::Upgrade)
                } else {
                    None
                }
            }
        }
    }

    /// Installs a line delivered by the directory in the given state.
    ///
    /// Victims pushed entirely out of the hierarchy are recorded and can be
    /// collected with [`CoreCaches::take_capacity_victims`] so the simulator
    /// can notify the directory (the paper's baseline notifies the directory
    /// of evictions of exclusively-owned blocks).
    pub fn fill(&mut self, line: LineAddr, state: CoherenceState) {
        self.install_l1(line, state);
    }

    /// Grants write permission for a line already present (upgrade
    /// completion). Returns false if the line is no longer cached — the
    /// copy was invalidated between the upgrade request and its grant (a
    /// concurrent writer won ownership first), so the grantee must refetch
    /// the data instead.
    pub fn grant_write(&mut self, line: LineAddr) -> bool {
        self.l1d.set_state(line, CoherenceState::Modified)
            || self.l2.set_state(line, CoherenceState::Modified)
    }

    /// Directory probe: reports whether the line is cached here and in what
    /// state. If `downgrade` is true the copy is demoted to a shared state
    /// (remote GetS); if `invalidate` is true it is removed (remote GetX).
    pub fn probe(&mut self, line: LineAddr, downgrade: bool, invalidate: bool) -> ProbeOutcome {
        let state = self.state_of(line);
        match state {
            None => ProbeOutcome::Miss,
            Some(s) => {
                if invalidate {
                    self.l1d.invalidate(line);
                    self.l2.invalidate(line);
                } else if downgrade {
                    let next = s.after_remote_read();
                    if !self.l1d.set_state(line, next) {
                        self.l2.set_state(line, next);
                    }
                }
                ProbeOutcome::Hit {
                    state: s,
                    dirty: s.is_dirty(),
                }
            }
        }
    }

    /// Directory-initiated invalidation (probe-filter eviction back-
    /// invalidate). Returns the state the line was in, if present.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<CoherenceState> {
        let in_l1 = self.l1d.invalidate(line);
        let in_l2 = self.l2.invalidate(line);
        in_l1.or(in_l2)
    }

    /// The line's state anywhere in the private hierarchy, without touching
    /// recency or statistics.
    pub fn state_of(&self, line: LineAddr) -> Option<CoherenceState> {
        self.l1d.probe(line).or_else(|| self.l2.probe(line))
    }

    /// True if the line is present anywhere in the private hierarchy.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.state_of(line).is_some()
    }

    /// Takes the list of lines that have been displaced entirely out of the
    /// hierarchy (L2 capacity victims) since the last call.
    pub fn take_capacity_victims(&mut self) -> Vec<EvictedLine> {
        std::mem::take(&mut self.pending_victims)
    }

    /// L1D statistics.
    pub fn l1_stats(&self) -> &CacheStats {
        self.l1d.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Number of lines resident across both levels.
    pub fn resident_lines(&self) -> usize {
        self.l1d.len() + self.l2.len()
    }

    fn install_l1(&mut self, line: LineAddr, state: CoherenceState) {
        if let Some(l1_victim) = self.l1d.insert(line, state) {
            // Exclusive hierarchy: the L1 victim moves down into the L2.
            if let Some(l2_victim) = self.l2.insert(l1_victim.addr, l1_victim.state) {
                self.pending_victims.push(l2_victim);
            }
        }
    }

    /// Exports the complete dynamic state of the hierarchy (both levels plus
    /// any uncollected capacity victims) for checkpointing.
    pub fn export_state(&self) -> CoreCachesState {
        CoreCachesState {
            l1d: self.l1d.export_state(),
            l2: self.l2.export_state(),
            pending_victims: self.pending_victims.clone(),
        }
    }

    /// Restores state previously captured with [`CoreCaches::export_state`]
    /// onto a hierarchy of the same geometry.
    ///
    /// # Panics
    ///
    /// Panics if either level's geometry does not match the export.
    pub fn restore_state(&mut self, state: &CoreCachesState) {
        self.l1d.restore_state(&state.l1d);
        self.l2.restore_state(&state.l2);
        self.pending_victims = state.pending_victims.clone();
    }
}

/// The complete dynamic state of a [`CoreCaches`] hierarchy, as captured by
/// [`CoreCaches::export_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreCachesState {
    /// The L1 data cache.
    pub l1d: crate::set_assoc::SetAssocState,
    /// The private exclusive L2.
    pub l2: crate::set_assoc::SetAssocState,
    /// L2 capacity victims not yet collected by the simulator.
    pub pending_victims: Vec<EvictedLine>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use allarm_types::config::MachineConfig;

    fn caches() -> CoreCaches {
        let cfg = MachineConfig::small_test();
        CoreCaches::new(&cfg.l1d, &cfg.l2)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = caches();
        let line = LineAddr::new(10);
        assert_eq!(c.access(line, false), AccessOutcome::Miss);
        c.fill(line, CoherenceState::Exclusive);
        assert_eq!(c.access(line, false), AccessOutcome::L1Hit);
        assert!(c.contains(line));
    }

    #[test]
    fn l2_hit_promotes_back_to_l1() {
        let cfg = MachineConfig::small_test();
        let mut c = CoreCaches::new(&cfg.l1d, &cfg.l2);
        let l1_lines = cfg.l1d.num_lines();
        // Fill more lines than the L1 holds so early lines fall to L2.
        for i in 0..(l1_lines + 8) {
            let line = LineAddr::new(i);
            c.access(line, false);
            c.fill(line, CoherenceState::Exclusive);
        }
        // Line 0 must have been displaced from L1 into L2.
        assert!(c.contains(LineAddr::new(0)));
        let outcome = c.access(LineAddr::new(0), false);
        assert_eq!(outcome, AccessOutcome::L2Hit);
        // After promotion it hits in L1.
        assert_eq!(c.access(LineAddr::new(0), false), AccessOutcome::L1Hit);
    }

    #[test]
    fn coherence_need_read_write_upgrade() {
        let mut c = caches();
        let line = LineAddr::new(77);
        assert_eq!(c.coherence_need(line, false), Some(CoherenceNeed::ReadMiss));
        assert_eq!(c.coherence_need(line, true), Some(CoherenceNeed::WriteMiss));
        c.fill(line, CoherenceState::Shared);
        assert_eq!(c.coherence_need(line, false), None);
        assert_eq!(c.coherence_need(line, true), Some(CoherenceNeed::Upgrade));
        assert!(c.grant_write(line));
        assert_eq!(c.coherence_need(line, true), None);
        assert_eq!(c.state_of(line), Some(CoherenceState::Modified));
    }

    #[test]
    fn grant_write_reports_an_invalidated_line() {
        let mut c = caches();
        let line = LineAddr::new(8);
        c.fill(line, CoherenceState::Shared);
        // The copy is invalidated (a concurrent writer took ownership)
        // before the upgrade grant arrives: the grant must report the miss
        // so the grantee can refetch instead of losing the write.
        c.probe(line, false, true);
        assert!(!c.grant_write(line));
        assert!(!c.contains(line));
    }

    #[test]
    fn probe_miss_and_hit() {
        let mut c = caches();
        let line = LineAddr::new(5);
        assert_eq!(c.probe(line, false, false), ProbeOutcome::Miss);
        c.fill(line, CoherenceState::Modified);
        match c.probe(line, false, false) {
            ProbeOutcome::Hit { state, dirty } => {
                assert_eq!(state, CoherenceState::Modified);
                assert!(dirty);
            }
            ProbeOutcome::Miss => panic!("expected a hit"),
        }
        // Non-mutating probe left the line alone.
        assert_eq!(c.state_of(line), Some(CoherenceState::Modified));
    }

    #[test]
    fn probe_downgrade_demotes_dirty_line_to_owned() {
        let mut c = caches();
        let line = LineAddr::new(5);
        c.fill(line, CoherenceState::Modified);
        c.probe(line, true, false);
        assert_eq!(c.state_of(line), Some(CoherenceState::Owned));
        // A clean exclusive line demotes to shared.
        let line2 = LineAddr::new(6);
        c.fill(line2, CoherenceState::Exclusive);
        c.probe(line2, true, false);
        assert_eq!(c.state_of(line2), Some(CoherenceState::Shared));
    }

    #[test]
    fn probe_invalidate_removes_line() {
        let mut c = caches();
        let line = LineAddr::new(5);
        c.fill(line, CoherenceState::Shared);
        c.probe(line, false, true);
        assert!(!c.contains(line));
    }

    #[test]
    fn invalidate_removes_from_either_level() {
        let cfg = MachineConfig::small_test();
        let mut c = CoreCaches::new(&cfg.l1d, &cfg.l2);
        let l1_lines = cfg.l1d.num_lines();
        for i in 0..(l1_lines + 4) {
            c.fill(LineAddr::new(i), CoherenceState::Exclusive);
        }
        // Line 0 now lives in L2.
        assert_eq!(
            c.invalidate(LineAddr::new(0)),
            Some(CoherenceState::Exclusive)
        );
        assert!(!c.contains(LineAddr::new(0)));
        assert_eq!(c.invalidate(LineAddr::new(9999)), None);
    }

    #[test]
    fn capacity_victims_surface_after_overflow() {
        let cfg = MachineConfig::small_test();
        let mut c = CoreCaches::new(&cfg.l1d, &cfg.l2);
        let total = cfg.l1d.num_lines() + cfg.l2.num_lines();
        // Stream enough distinct lines to overflow L1 + L2 combined.
        for i in 0..(total * 2) {
            c.fill(LineAddr::new(i), CoherenceState::Exclusive);
        }
        let victims = c.take_capacity_victims();
        assert!(!victims.is_empty());
        // Victims are gone from the hierarchy.
        for v in &victims {
            assert!(!c.contains(v.addr));
        }
        // Draining twice yields nothing new.
        assert!(c.take_capacity_victims().is_empty());
        // The hierarchy never holds more than its capacity.
        assert!(c.resident_lines() <= total as usize);
    }

    #[test]
    fn write_access_is_still_a_presence_hit() {
        let mut c = caches();
        let line = LineAddr::new(3);
        c.fill(line, CoherenceState::Shared);
        assert_eq!(c.access(line, true), AccessOutcome::L1Hit);
    }
}

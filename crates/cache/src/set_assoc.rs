//! A generic set-associative array of cache lines.

use crate::replacement::ReplacementPolicy;
use crate::state::CoherenceState;
use crate::stats::CacheStats;
use allarm_types::addr::LineAddr;
use allarm_types::config::CacheConfig;

/// A line pushed out of the array to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// The evicted line's address.
    pub addr: LineAddr,
    /// Its coherence state at the time of eviction.
    pub state: CoherenceState,
}

impl EvictedLine {
    /// True if the victim held dirty data that must be written back.
    pub fn needs_writeback(&self) -> bool {
        self.state.is_dirty()
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    addr: LineAddr,
    state: CoherenceState,
    last_touch: u64,
    inserted: u64,
}

/// A set-associative array of cache lines with MOESI state per line.
///
/// This structure is used both for the data caches (`L1D`, `L2`) and, in
/// `allarm-coherence`, as the tag array backing the probe filter.
///
/// Storage is a single flat slab of `num_sets * ways` entries indexed by
/// `set * ways + way` — one allocation, cache-friendly walks — with a
/// per-set occupancy count. Within a set the occupied prefix behaves
/// exactly like the per-set `Vec` it replaced (push appends at `len`,
/// removal is a `swap_remove`), so victim selection — which is
/// position-dependent — is unchanged.
///
/// # Examples
///
/// ```
/// use allarm_cache::{SetAssocCache, CoherenceState};
/// use allarm_types::{config::CacheConfig, addr::LineAddr};
///
/// let mut cache = SetAssocCache::new(&CacheConfig::new(4096, 2, 1));
/// let line = LineAddr::new(7);
/// assert_eq!(cache.lookup(line), None);
/// cache.insert(line, CoherenceState::Exclusive);
/// assert_eq!(cache.lookup(line), Some(CoherenceState::Exclusive));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    /// `num_sets * ways` entries; only the first `lens[set]` ways of each
    /// set's `ways`-sized span are meaningful.
    slab: Vec<Way>,
    lens: Vec<u32>,
    num_sets: usize,
    ways: usize,
    policy: ReplacementPolicy,
    tick: u64,
    stats: CacheStats,
}

/// Filler for unoccupied slab entries; never read (all walks stop at the
/// set's occupancy count).
const EMPTY_WAY: Way = Way {
    addr: LineAddr::new(0),
    state: CoherenceState::Invalid,
    last_touch: 0,
    inserted: 0,
};

impl SetAssocCache {
    /// Creates a cache with the geometry of `config` and LRU replacement.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero sets or zero ways.
    pub fn new(config: &CacheConfig) -> Self {
        Self::with_policy(config, ReplacementPolicy::Lru)
    }

    /// Creates a cache with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero sets or zero ways.
    pub fn with_policy(config: &CacheConfig, policy: ReplacementPolicy) -> Self {
        let num_sets = config.num_sets() as usize;
        let ways = config.ways as usize;
        Self::from_geometry(num_sets, ways, policy)
    }

    /// Creates a cache from an explicit (sets, ways) geometry; used by the
    /// probe filter whose "line size" is a directory entry, not 64 bytes.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn from_geometry(num_sets: usize, ways: usize, policy: ReplacementPolicy) -> Self {
        assert!(num_sets > 0, "cache must have at least one set");
        assert!(ways > 0, "cache must have at least one way");
        SetAssocCache {
            slab: vec![EMPTY_WAY; num_sets * ways],
            lens: vec![0; num_sets],
            num_sets,
            ways,
            policy,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.raw() % self.num_sets as u64) as usize
    }

    /// The occupied ways of `set`.
    fn set_ways(&self, set: usize) -> &[Way] {
        let base = set * self.ways;
        &self.slab[base..base + self.lens[set] as usize]
    }

    /// The occupied ways of `set`, mutably.
    fn set_ways_mut(&mut self, set: usize) -> &mut [Way] {
        let base = set * self.ways;
        &mut self.slab[base..base + self.lens[set] as usize]
    }

    /// Appends `way` to `set`'s occupied prefix (`Vec::push` equivalent).
    fn push_way(&mut self, set: usize, way: Way) {
        let len = self.lens[set] as usize;
        debug_assert!(len < self.ways, "set overfull");
        self.slab[set * self.ways + len] = way;
        self.lens[set] += 1;
    }

    /// Removes position `pos` from `set`'s occupied prefix by swapping the
    /// last occupied way into its place (`Vec::swap_remove` equivalent —
    /// victim choice downstream depends on this exact reordering).
    fn swap_remove_way(&mut self, set: usize, pos: usize) -> Way {
        let base = set * self.ways;
        let len = self.lens[set] as usize;
        debug_assert!(pos < len, "swap_remove out of bounds");
        let removed = self.slab[base + pos];
        self.slab[base + pos] = self.slab[base + len - 1];
        self.lens[set] -= 1;
        removed
    }

    /// Looks up `line`, updating recency and hit/miss statistics.
    pub fn lookup(&mut self, line: LineAddr) -> Option<CoherenceState> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(line);
        let hit = self
            .set_ways_mut(set)
            .iter_mut()
            .find(|w| w.addr == line)
            .map(|way| {
                way.last_touch = tick;
                way.state
            });
        match hit {
            Some(state) => {
                self.stats.hits.incr();
                Some(state)
            }
            None => {
                self.stats.misses.incr();
                None
            }
        }
    }

    /// Checks whether `line` is present without updating recency or
    /// statistics (a directory probe).
    pub fn probe(&self, line: LineAddr) -> Option<CoherenceState> {
        let set = self.set_index(line);
        self.set_ways(set)
            .iter()
            .find(|w| w.addr == line)
            .map(|w| w.state)
    }

    /// Inserts `line` in `state`, evicting a victim if the set is full.
    ///
    /// Returns the victim, if any. Inserting a line that is already present
    /// just updates its state and recency and returns `None`.
    pub fn insert(&mut self, line: LineAddr, state: CoherenceState) -> Option<EvictedLine> {
        self.tick += 1;
        let tick = self.tick;
        let set_idx = self.set_index(line);
        let ways = self.ways;
        let policy = self.policy;

        if let Some(way) = self
            .set_ways_mut(set_idx)
            .iter_mut()
            .find(|w| w.addr == line)
        {
            way.state = state;
            way.last_touch = tick;
            return None;
        }

        let mut victim = None;
        if self.lens[set_idx] as usize >= ways {
            let (touches, inserts): (Vec<u64>, Vec<u64>) = self
                .set_ways(set_idx)
                .iter()
                .map(|w| (w.last_touch, w.inserted))
                .unzip();
            let victim_way = policy.pick_victim(&touches, &inserts, tick);
            let evicted = self.swap_remove_way(set_idx, victim_way);
            self.stats.evictions.incr();
            if evicted.state.is_dirty() {
                self.stats.writebacks.incr();
            }
            victim = Some(EvictedLine {
                addr: evicted.addr,
                state: evicted.state,
            });
        }
        self.push_way(
            set_idx,
            Way {
                addr: line,
                state,
                last_touch: tick,
                inserted: tick,
            },
        );
        victim
    }

    /// Removes `line` (a directory-initiated invalidation), returning its
    /// state if it was present.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<CoherenceState> {
        let set = self.set_index(line);
        if let Some(pos) = self.set_ways(set).iter().position(|w| w.addr == line) {
            let way = self.swap_remove_way(set, pos);
            self.stats.invalidations.incr();
            if way.state.is_dirty() {
                self.stats.writebacks.incr();
            }
            Some(way.state)
        } else {
            None
        }
    }

    /// Changes the state of a resident line. Returns false if the line is
    /// not present.
    pub fn set_state(&mut self, line: LineAddr, state: CoherenceState) -> bool {
        let set = self.set_index(line);
        if let Some(way) = self.set_ways_mut(set).iter_mut().find(|w| w.addr == line) {
            way.state = state;
            true
        } else {
            false
        }
    }

    /// Removes `line` without counting it as an invalidation (used when a
    /// line migrates between levels of the same core's hierarchy).
    pub fn remove_silently(&mut self, line: LineAddr) -> Option<CoherenceState> {
        let set = self.set_index(line);
        if let Some(pos) = self.set_ways(set).iter().position(|w| w.addr == line) {
            let way = self.swap_remove_way(set, pos);
            Some(way.state)
        } else {
            None
        }
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }

    /// True if no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of resident lines.
    pub fn capacity(&self) -> usize {
        self.num_sets * self.ways
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Access statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Iterates over all resident lines and their states.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, CoherenceState)> + '_ {
        (0..self.num_sets).flat_map(|set| self.set_ways(set).iter().map(|w| (w.addr, w.state)))
    }

    /// Exports the complete dynamic state of the array — every occupied way
    /// in storage order (position within a set is semantic: victim choice
    /// depends on it), the per-set occupancy counts, the recency clock and
    /// the statistics — for checkpointing. [`SetAssocCache::restore_state`]
    /// of the export onto a fresh same-geometry cache reproduces the array
    /// bit-for-bit.
    pub fn export_state(&self) -> SetAssocState {
        SetAssocState {
            sets: (0..self.num_sets)
                .map(|set| {
                    self.set_ways(set)
                        .iter()
                        .map(|w| WayState {
                            addr: w.addr,
                            state: w.state,
                            last_touch: w.last_touch,
                            inserted: w.inserted,
                        })
                        .collect()
                })
                .collect(),
            tick: self.tick,
            stats: self.stats,
        }
    }

    /// Restores state previously captured with [`SetAssocCache::export_state`].
    ///
    /// # Panics
    ///
    /// Panics if the export's geometry (set count, per-set occupancy vs.
    /// associativity) does not fit this cache.
    pub fn restore_state(&mut self, state: &SetAssocState) {
        assert_eq!(
            state.sets.len(),
            self.num_sets,
            "snapshot set count does not match cache geometry"
        );
        self.slab.fill(EMPTY_WAY);
        for (set, ways) in state.sets.iter().enumerate() {
            assert!(
                ways.len() <= self.ways,
                "snapshot set {set} overfills {}-way cache",
                self.ways
            );
            self.lens[set] = ways.len() as u32;
            for (pos, w) in ways.iter().enumerate() {
                self.slab[set * self.ways + pos] = Way {
                    addr: w.addr,
                    state: w.state,
                    last_touch: w.last_touch,
                    inserted: w.inserted,
                };
            }
        }
        self.tick = state.tick;
        self.stats = state.stats;
    }
}

/// One occupied way of a checkpointed [`SetAssocCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WayState {
    /// The resident line.
    pub addr: LineAddr,
    /// Its MOESI state.
    pub state: CoherenceState,
    /// Recency stamp (drives LRU victim choice).
    pub last_touch: u64,
    /// Insertion stamp (drives FIFO victim choice).
    pub inserted: u64,
}

/// The complete dynamic state of a [`SetAssocCache`], as captured by
/// [`SetAssocCache::export_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetAssocState {
    /// Occupied ways per set, in storage order.
    pub sets: Vec<Vec<WayState>>,
    /// The recency/insertion clock.
    pub tick: u64,
    /// Access statistics at capture time.
    pub stats: CacheStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways = 4 lines.
        SetAssocCache::from_geometry(2, 2, ReplacementPolicy::Lru)
    }

    #[test]
    fn insert_then_lookup_hits() {
        let mut c = tiny();
        let line = LineAddr::new(4);
        assert_eq!(c.lookup(line), None);
        assert!(c.insert(line, CoherenceState::Shared).is_none());
        assert_eq!(c.lookup(line), Some(CoherenceState::Shared));
        assert_eq!(c.stats().hits.get(), 1);
        assert_eq!(c.stats().misses.get(), 1);
    }

    #[test]
    fn full_set_evicts_lru_victim() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even addresses, 2 sets).
        c.insert(LineAddr::new(0), CoherenceState::Exclusive);
        c.insert(LineAddr::new(2), CoherenceState::Exclusive);
        // Touch line 0 so line 2 becomes LRU.
        c.lookup(LineAddr::new(0));
        let victim = c
            .insert(LineAddr::new(4), CoherenceState::Exclusive)
            .unwrap();
        assert_eq!(victim.addr, LineAddr::new(2));
        assert_eq!(c.stats().evictions.get(), 1);
        assert!(c.probe(LineAddr::new(0)).is_some());
        assert!(c.probe(LineAddr::new(2)).is_none());
    }

    #[test]
    fn dirty_victim_counts_writeback() {
        let mut c = tiny();
        c.insert(LineAddr::new(0), CoherenceState::Modified);
        c.insert(LineAddr::new(2), CoherenceState::Shared);
        let victim = c.insert(LineAddr::new(4), CoherenceState::Shared).unwrap();
        assert_eq!(victim.addr, LineAddr::new(0));
        assert!(victim.needs_writeback());
        assert_eq!(c.stats().writebacks.get(), 1);
    }

    #[test]
    fn reinserting_resident_line_updates_state_without_eviction() {
        let mut c = tiny();
        c.insert(LineAddr::new(0), CoherenceState::Shared);
        let victim = c.insert(LineAddr::new(0), CoherenceState::Modified);
        assert!(victim.is_none());
        assert_eq!(c.probe(LineAddr::new(0)), Some(CoherenceState::Modified));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn probe_does_not_touch_stats_or_recency() {
        let mut c = tiny();
        c.insert(LineAddr::new(0), CoherenceState::Shared);
        let hits_before = c.stats().hits.get();
        let misses_before = c.stats().misses.get();
        assert!(c.probe(LineAddr::new(0)).is_some());
        assert!(c.probe(LineAddr::new(6)).is_none());
        assert_eq!(c.stats().hits.get(), hits_before);
        assert_eq!(c.stats().misses.get(), misses_before);
    }

    #[test]
    fn invalidate_removes_and_counts() {
        let mut c = tiny();
        c.insert(LineAddr::new(0), CoherenceState::Modified);
        assert_eq!(
            c.invalidate(LineAddr::new(0)),
            Some(CoherenceState::Modified)
        );
        assert_eq!(c.invalidate(LineAddr::new(0)), None);
        assert_eq!(c.stats().invalidations.get(), 1);
        assert_eq!(c.stats().writebacks.get(), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn remove_silently_does_not_count_invalidation() {
        let mut c = tiny();
        c.insert(LineAddr::new(0), CoherenceState::Exclusive);
        assert_eq!(
            c.remove_silently(LineAddr::new(0)),
            Some(CoherenceState::Exclusive)
        );
        assert_eq!(c.stats().invalidations.get(), 0);
        assert_eq!(c.remove_silently(LineAddr::new(0)), None);
    }

    #[test]
    fn set_state_changes_resident_lines_only() {
        let mut c = tiny();
        c.insert(LineAddr::new(0), CoherenceState::Exclusive);
        assert!(c.set_state(LineAddr::new(0), CoherenceState::Owned));
        assert_eq!(c.probe(LineAddr::new(0)), Some(CoherenceState::Owned));
        assert!(!c.set_state(LineAddr::new(2), CoherenceState::Shared));
    }

    #[test]
    fn capacity_and_geometry() {
        let c = tiny();
        assert_eq!(c.capacity(), 4);
        assert_eq!(c.ways(), 2);
        assert_eq!(c.num_sets(), 2);
        let from_cfg = SetAssocCache::new(&CacheConfig::new(4096, 4, 1));
        assert_eq!(from_cfg.capacity(), 64);
        assert_eq!(from_cfg.num_sets(), 16);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut c = tiny();
        for i in 0..100u64 {
            c.insert(LineAddr::new(i), CoherenceState::Shared);
        }
        assert!(c.len() <= c.capacity());
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn iter_visits_all_resident_lines() {
        let mut c = tiny();
        c.insert(LineAddr::new(0), CoherenceState::Shared);
        c.insert(LineAddr::new(1), CoherenceState::Modified);
        let mut lines: Vec<u64> = c.iter().map(|(addr, _)| addr.raw()).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_rejected() {
        let _ = SetAssocCache::from_geometry(4, 0, ReplacementPolicy::Lru);
    }

    /// The nested-`Vec` storage the flat slab replaced, kept as an
    /// executable specification: every operation must return the same
    /// value and leave the same stats as this model.
    struct NestedModel {
        sets: Vec<Vec<Way>>,
        ways: usize,
        policy: ReplacementPolicy,
        tick: u64,
        stats: CacheStats,
    }

    impl NestedModel {
        fn new(num_sets: usize, ways: usize, policy: ReplacementPolicy) -> Self {
            NestedModel {
                sets: vec![Vec::new(); num_sets],
                ways,
                policy,
                tick: 0,
                stats: CacheStats::default(),
            }
        }

        fn set_index(&self, line: LineAddr) -> usize {
            (line.raw() % self.sets.len() as u64) as usize
        }

        fn lookup(&mut self, line: LineAddr) -> Option<CoherenceState> {
            self.tick += 1;
            let tick = self.tick;
            let set = self.set_index(line);
            if let Some(way) = self.sets[set].iter_mut().find(|w| w.addr == line) {
                way.last_touch = tick;
                self.stats.hits.incr();
                Some(way.state)
            } else {
                self.stats.misses.incr();
                None
            }
        }

        fn insert(&mut self, line: LineAddr, state: CoherenceState) -> Option<EvictedLine> {
            self.tick += 1;
            let tick = self.tick;
            let set = self.set_index(line);
            if let Some(way) = self.sets[set].iter_mut().find(|w| w.addr == line) {
                way.state = state;
                way.last_touch = tick;
                return None;
            }
            let mut victim = None;
            if self.sets[set].len() >= self.ways {
                let touches: Vec<u64> = self.sets[set].iter().map(|w| w.last_touch).collect();
                let inserts: Vec<u64> = self.sets[set].iter().map(|w| w.inserted).collect();
                let evicted =
                    self.sets[set].swap_remove(self.policy.pick_victim(&touches, &inserts, tick));
                self.stats.evictions.incr();
                if evicted.state.is_dirty() {
                    self.stats.writebacks.incr();
                }
                victim = Some(EvictedLine {
                    addr: evicted.addr,
                    state: evicted.state,
                });
            }
            self.sets[set].push(Way {
                addr: line,
                state,
                last_touch: tick,
                inserted: tick,
            });
            victim
        }

        fn invalidate(&mut self, line: LineAddr) -> Option<CoherenceState> {
            let set = self.set_index(line);
            if let Some(pos) = self.sets[set].iter().position(|w| w.addr == line) {
                let way = self.sets[set].swap_remove(pos);
                self.stats.invalidations.incr();
                if way.state.is_dirty() {
                    self.stats.writebacks.incr();
                }
                Some(way.state)
            } else {
                None
            }
        }

        fn remove_silently(&mut self, line: LineAddr) -> Option<CoherenceState> {
            let set = self.set_index(line);
            let pos = self.sets[set].iter().position(|w| w.addr == line)?;
            Some(self.sets[set].swap_remove(pos).state)
        }

        fn contents(&self) -> Vec<(u64, CoherenceState)> {
            // In storage order: swap_remove reordering must match too.
            self.sets
                .iter()
                .flat_map(|set| set.iter().map(|w| (w.addr.raw(), w.state)))
                .collect()
        }
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Drives the flat-slab cache and the nested-`Vec` reference through
    /// the same seeded operation stream and demands identical results,
    /// identical stats, and identical storage order — the strongest form
    /// of "the slab refactor changed nothing", covering the
    /// position-dependent victim choices of every policy.
    #[test]
    fn flat_slab_matches_nested_vec_reference_model() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ] {
            for seed in 1..=4u64 {
                let mut rng = seed;
                let mut flat = SetAssocCache::from_geometry(4, 3, policy);
                let mut model = NestedModel::new(4, 3, policy);
                let states = [
                    CoherenceState::Modified,
                    CoherenceState::Owned,
                    CoherenceState::Exclusive,
                    CoherenceState::Shared,
                ];
                for _ in 0..5_000 {
                    let r = splitmix64(&mut rng);
                    let line = LineAddr::new(r % 48); // 4x conflict pressure
                    let state = states[(r >> 8) as usize % states.len()];
                    match (r >> 16) % 5 {
                        0 => assert_eq!(flat.lookup(line), model.lookup(line)),
                        1 | 2 => assert_eq!(flat.insert(line, state), model.insert(line, state)),
                        3 => assert_eq!(flat.invalidate(line), model.invalidate(line)),
                        _ => assert_eq!(flat.remove_silently(line), model.remove_silently(line)),
                    }
                }
                let flat_contents: Vec<(u64, CoherenceState)> = flat
                    .iter()
                    .map(|(addr, state)| (addr.raw(), state))
                    .collect();
                assert_eq!(flat_contents, model.contents(), "{policy:?} seed {seed}");
                assert_eq!(flat.stats().hits.get(), model.stats.hits.get());
                assert_eq!(flat.stats().misses.get(), model.stats.misses.get());
                assert_eq!(flat.stats().evictions.get(), model.stats.evictions.get());
                assert_eq!(flat.stats().writebacks.get(), model.stats.writebacks.get());
                assert_eq!(
                    flat.stats().invalidations.get(),
                    model.stats.invalidations.get()
                );
            }
        }
    }
}

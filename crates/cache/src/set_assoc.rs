//! A generic set-associative array of cache lines.

use crate::replacement::ReplacementPolicy;
use crate::state::CoherenceState;
use crate::stats::CacheStats;
use allarm_types::addr::LineAddr;
use allarm_types::config::CacheConfig;

/// A line pushed out of the array to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// The evicted line's address.
    pub addr: LineAddr,
    /// Its coherence state at the time of eviction.
    pub state: CoherenceState,
}

impl EvictedLine {
    /// True if the victim held dirty data that must be written back.
    pub fn needs_writeback(&self) -> bool {
        self.state.is_dirty()
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    addr: LineAddr,
    state: CoherenceState,
    last_touch: u64,
    inserted: u64,
}

/// A set-associative array of cache lines with MOESI state per line.
///
/// This structure is used both for the data caches (`L1D`, `L2`) and, in
/// `allarm-coherence`, as the tag array backing the probe filter.
///
/// # Examples
///
/// ```
/// use allarm_cache::{SetAssocCache, CoherenceState};
/// use allarm_types::{config::CacheConfig, addr::LineAddr};
///
/// let mut cache = SetAssocCache::new(&CacheConfig::new(4096, 2, 1));
/// let line = LineAddr::new(7);
/// assert_eq!(cache.lookup(line), None);
/// cache.insert(line, CoherenceState::Exclusive);
/// assert_eq!(cache.lookup(line), Some(CoherenceState::Exclusive));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: Vec<Vec<Way>>,
    ways: usize,
    policy: ReplacementPolicy,
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates a cache with the geometry of `config` and LRU replacement.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero sets or zero ways.
    pub fn new(config: &CacheConfig) -> Self {
        Self::with_policy(config, ReplacementPolicy::Lru)
    }

    /// Creates a cache with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero sets or zero ways.
    pub fn with_policy(config: &CacheConfig, policy: ReplacementPolicy) -> Self {
        let num_sets = config.num_sets() as usize;
        let ways = config.ways as usize;
        assert!(num_sets > 0, "cache must have at least one set");
        assert!(ways > 0, "cache must have at least one way");
        SetAssocCache {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            policy,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Creates a cache from an explicit (sets, ways) geometry; used by the
    /// probe filter whose "line size" is a directory entry, not 64 bytes.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn from_geometry(num_sets: usize, ways: usize, policy: ReplacementPolicy) -> Self {
        assert!(num_sets > 0, "cache must have at least one set");
        assert!(ways > 0, "cache must have at least one way");
        SetAssocCache {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            policy,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.raw() % self.sets.len() as u64) as usize
    }

    /// Looks up `line`, updating recency and hit/miss statistics.
    pub fn lookup(&mut self, line: LineAddr) -> Option<CoherenceState> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(line);
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.addr == line) {
            way.last_touch = tick;
            self.stats.hits.incr();
            Some(way.state)
        } else {
            self.stats.misses.incr();
            None
        }
    }

    /// Checks whether `line` is present without updating recency or
    /// statistics (a directory probe).
    pub fn probe(&self, line: LineAddr) -> Option<CoherenceState> {
        let set = self.set_index(line);
        self.sets[set]
            .iter()
            .find(|w| w.addr == line)
            .map(|w| w.state)
    }

    /// Inserts `line` in `state`, evicting a victim if the set is full.
    ///
    /// Returns the victim, if any. Inserting a line that is already present
    /// just updates its state and recency and returns `None`.
    pub fn insert(&mut self, line: LineAddr, state: CoherenceState) -> Option<EvictedLine> {
        self.tick += 1;
        let tick = self.tick;
        let set_idx = self.set_index(line);
        let ways = self.ways;
        let policy = self.policy;

        if let Some(way) = self.sets[set_idx].iter_mut().find(|w| w.addr == line) {
            way.state = state;
            way.last_touch = tick;
            return None;
        }

        let mut victim = None;
        if self.sets[set_idx].len() >= ways {
            let (touches, inserts): (Vec<u64>, Vec<u64>) = self.sets[set_idx]
                .iter()
                .map(|w| (w.last_touch, w.inserted))
                .unzip();
            let victim_way = policy.pick_victim(&touches, &inserts, tick);
            let evicted = self.sets[set_idx].swap_remove(victim_way);
            self.stats.evictions.incr();
            if evicted.state.is_dirty() {
                self.stats.writebacks.incr();
            }
            victim = Some(EvictedLine {
                addr: evicted.addr,
                state: evicted.state,
            });
        }
        self.sets[set_idx].push(Way {
            addr: line,
            state,
            last_touch: tick,
            inserted: tick,
        });
        victim
    }

    /// Removes `line` (a directory-initiated invalidation), returning its
    /// state if it was present.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<CoherenceState> {
        let set = self.set_index(line);
        if let Some(pos) = self.sets[set].iter().position(|w| w.addr == line) {
            let way = self.sets[set].swap_remove(pos);
            self.stats.invalidations.incr();
            if way.state.is_dirty() {
                self.stats.writebacks.incr();
            }
            Some(way.state)
        } else {
            None
        }
    }

    /// Changes the state of a resident line. Returns false if the line is
    /// not present.
    pub fn set_state(&mut self, line: LineAddr, state: CoherenceState) -> bool {
        let set = self.set_index(line);
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.addr == line) {
            way.state = state;
            true
        } else {
            false
        }
    }

    /// Removes `line` without counting it as an invalidation (used when a
    /// line migrates between levels of the same core's hierarchy).
    pub fn remove_silently(&mut self, line: LineAddr) -> Option<CoherenceState> {
        let set = self.set_index(line);
        if let Some(pos) = self.sets[set].iter().position(|w| w.addr == line) {
            let way = self.sets[set].swap_remove(pos);
            Some(way.state)
        } else {
            None
        }
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// True if no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of resident lines.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Access statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Iterates over all resident lines and their states.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, CoherenceState)> + '_ {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|w| (w.addr, w.state)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways = 4 lines.
        SetAssocCache::from_geometry(2, 2, ReplacementPolicy::Lru)
    }

    #[test]
    fn insert_then_lookup_hits() {
        let mut c = tiny();
        let line = LineAddr::new(4);
        assert_eq!(c.lookup(line), None);
        assert!(c.insert(line, CoherenceState::Shared).is_none());
        assert_eq!(c.lookup(line), Some(CoherenceState::Shared));
        assert_eq!(c.stats().hits.get(), 1);
        assert_eq!(c.stats().misses.get(), 1);
    }

    #[test]
    fn full_set_evicts_lru_victim() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even addresses, 2 sets).
        c.insert(LineAddr::new(0), CoherenceState::Exclusive);
        c.insert(LineAddr::new(2), CoherenceState::Exclusive);
        // Touch line 0 so line 2 becomes LRU.
        c.lookup(LineAddr::new(0));
        let victim = c
            .insert(LineAddr::new(4), CoherenceState::Exclusive)
            .unwrap();
        assert_eq!(victim.addr, LineAddr::new(2));
        assert_eq!(c.stats().evictions.get(), 1);
        assert!(c.probe(LineAddr::new(0)).is_some());
        assert!(c.probe(LineAddr::new(2)).is_none());
    }

    #[test]
    fn dirty_victim_counts_writeback() {
        let mut c = tiny();
        c.insert(LineAddr::new(0), CoherenceState::Modified);
        c.insert(LineAddr::new(2), CoherenceState::Shared);
        let victim = c.insert(LineAddr::new(4), CoherenceState::Shared).unwrap();
        assert_eq!(victim.addr, LineAddr::new(0));
        assert!(victim.needs_writeback());
        assert_eq!(c.stats().writebacks.get(), 1);
    }

    #[test]
    fn reinserting_resident_line_updates_state_without_eviction() {
        let mut c = tiny();
        c.insert(LineAddr::new(0), CoherenceState::Shared);
        let victim = c.insert(LineAddr::new(0), CoherenceState::Modified);
        assert!(victim.is_none());
        assert_eq!(c.probe(LineAddr::new(0)), Some(CoherenceState::Modified));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn probe_does_not_touch_stats_or_recency() {
        let mut c = tiny();
        c.insert(LineAddr::new(0), CoherenceState::Shared);
        let hits_before = c.stats().hits.get();
        let misses_before = c.stats().misses.get();
        assert!(c.probe(LineAddr::new(0)).is_some());
        assert!(c.probe(LineAddr::new(6)).is_none());
        assert_eq!(c.stats().hits.get(), hits_before);
        assert_eq!(c.stats().misses.get(), misses_before);
    }

    #[test]
    fn invalidate_removes_and_counts() {
        let mut c = tiny();
        c.insert(LineAddr::new(0), CoherenceState::Modified);
        assert_eq!(
            c.invalidate(LineAddr::new(0)),
            Some(CoherenceState::Modified)
        );
        assert_eq!(c.invalidate(LineAddr::new(0)), None);
        assert_eq!(c.stats().invalidations.get(), 1);
        assert_eq!(c.stats().writebacks.get(), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn remove_silently_does_not_count_invalidation() {
        let mut c = tiny();
        c.insert(LineAddr::new(0), CoherenceState::Exclusive);
        assert_eq!(
            c.remove_silently(LineAddr::new(0)),
            Some(CoherenceState::Exclusive)
        );
        assert_eq!(c.stats().invalidations.get(), 0);
        assert_eq!(c.remove_silently(LineAddr::new(0)), None);
    }

    #[test]
    fn set_state_changes_resident_lines_only() {
        let mut c = tiny();
        c.insert(LineAddr::new(0), CoherenceState::Exclusive);
        assert!(c.set_state(LineAddr::new(0), CoherenceState::Owned));
        assert_eq!(c.probe(LineAddr::new(0)), Some(CoherenceState::Owned));
        assert!(!c.set_state(LineAddr::new(2), CoherenceState::Shared));
    }

    #[test]
    fn capacity_and_geometry() {
        let c = tiny();
        assert_eq!(c.capacity(), 4);
        assert_eq!(c.ways(), 2);
        assert_eq!(c.num_sets(), 2);
        let from_cfg = SetAssocCache::new(&CacheConfig::new(4096, 4, 1));
        assert_eq!(from_cfg.capacity(), 64);
        assert_eq!(from_cfg.num_sets(), 16);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut c = tiny();
        for i in 0..100u64 {
            c.insert(LineAddr::new(i), CoherenceState::Shared);
        }
        assert!(c.len() <= c.capacity());
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn iter_visits_all_resident_lines() {
        let mut c = tiny();
        c.insert(LineAddr::new(0), CoherenceState::Shared);
        c.insert(LineAddr::new(1), CoherenceState::Modified);
        let mut lines: Vec<u64> = c.iter().map(|(addr, _)| addr.raw()).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_rejected() {
        let _ = SetAssocCache::from_geometry(4, 0, ReplacementPolicy::Lru);
    }
}

//! The shared per-node LLC slice (NUCA).
//!
//! Each NUMA node optionally owns one slice, shared by the node's cores,
//! sitting on the miss path between the private L2s and the home
//! directory. The slice is **inclusive of nothing** and holds only clean
//! `Shared` copies: it fills when a core on the node receives a `Shared`
//! data reply, and a later read miss from any core on the same node can be
//! served from the slice without consulting the home directory. Writable
//! (`Exclusive`/`Modified`) fills never enter the slice — a resident copy
//! could otherwise go stale through a silent E→M upgrade that no directory
//! message announces.
//!
//! Coherence invariant: *slice-resident ⇒ probe-filter-tracked*. Every
//! `Shared` fill is tracked by the home directory, and the directory keeps
//! the node's presence bit alive while the slice holds the line (private
//! evictions check the slice before clearing it), so ownership
//! invalidations and probe-filter evictions always reach the slice.

use crate::replacement::ReplacementPolicy;
use crate::set_assoc::{SetAssocCache, SetAssocState};
use crate::state::CoherenceState;
use crate::stats::CacheStats;
use allarm_types::addr::LineAddr;
use allarm_types::config::LlcConfig;

/// One node's shared LLC slice: a set-associative array of clean `Shared`
/// lines with LRU replacement.
///
/// # Examples
///
/// ```
/// use allarm_cache::LlcSlice;
/// use allarm_types::{addr::LineAddr, config::LlcConfig};
///
/// let mut slice = LlcSlice::new(&LlcConfig::shared_slice(64 * 1024, 16));
/// let line = LineAddr::new(9);
/// assert!(!slice.lookup(line));
/// slice.fill(line);
/// assert!(slice.lookup(line));
/// ```
#[derive(Debug, Clone)]
pub struct LlcSlice {
    array: SetAssocCache,
}

impl LlcSlice {
    /// Creates a slice with the configured geometry and LRU replacement.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate geometry; validate the [`LlcConfig`] first to
    /// get an error instead.
    pub fn new(config: &LlcConfig) -> Self {
        LlcSlice {
            array: SetAssocCache::with_policy(&config.cache_config(), ReplacementPolicy::Lru),
        }
    }

    /// A core-phase lookup by a core on this slice's node: updates recency
    /// and hit/miss statistics. Returns whether the line was resident.
    pub fn lookup(&mut self, line: LineAddr) -> bool {
        self.array.lookup(line).is_some()
    }

    /// A directory-phase presence check: no recency update, no statistics
    /// (safe to call concurrently-in-effect from any shard — the slice is
    /// not observably mutated).
    pub fn probe(&self, line: LineAddr) -> bool {
        self.array.probe(line).is_some()
    }

    /// Inserts a clean `Shared` copy of `line` after a data reply. A
    /// capacity victim is dropped silently — slice lines are never dirty,
    /// so nothing is written back and the directory is not notified (the
    /// node's cores may still hold private copies, so node presence must
    /// stay tracked regardless).
    pub fn fill(&mut self, line: LineAddr) {
        self.array.insert(line, CoherenceState::Shared);
    }

    /// Removes `line` on a directory-initiated invalidation (ownership
    /// transfer or probe-filter eviction). Returns whether the line was
    /// resident. Mutates only commutative counters besides the removal, so
    /// concurrent cross-shard invalidations of different lines commute.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        self.array.invalidate(line).is_some()
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.array.len()
    }

    /// True if no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.array.is_empty()
    }

    /// Hit/miss/eviction/invalidation counters.
    pub fn stats(&self) -> &CacheStats {
        self.array.stats()
    }

    /// Exports the slice's complete dynamic state for checkpointing.
    pub fn export_state(&self) -> SetAssocState {
        self.array.export_state()
    }

    /// Restores state previously captured with [`LlcSlice::export_state`].
    ///
    /// # Panics
    ///
    /// Panics if the export's geometry does not fit this slice.
    pub fn restore_state(&mut self, state: &SetAssocState) {
        self.array.restore_state(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice() -> LlcSlice {
        // 64 lines: 4 sets x 16 ways.
        LlcSlice::new(&LlcConfig::shared_slice(4 * 1024, 16))
    }

    #[test]
    fn fill_then_lookup_hits_and_counts() {
        let mut s = slice();
        let line = LineAddr::new(5);
        assert!(!s.lookup(line));
        s.fill(line);
        assert!(s.lookup(line));
        assert_eq!(s.stats().hits.get(), 1);
        assert_eq!(s.stats().misses.get(), 1);
    }

    #[test]
    fn probe_is_pure() {
        let mut s = slice();
        s.fill(LineAddr::new(1));
        let before = *s.stats();
        assert!(s.probe(LineAddr::new(1)));
        assert!(!s.probe(LineAddr::new(2)));
        assert_eq!(*s.stats(), before);
        let snap = s.export_state();
        s.probe(LineAddr::new(1));
        assert_eq!(s.export_state(), snap, "probe must not move recency");
    }

    #[test]
    fn invalidate_removes_and_reports_presence() {
        let mut s = slice();
        s.fill(LineAddr::new(3));
        assert!(s.invalidate(LineAddr::new(3)));
        assert!(!s.invalidate(LineAddr::new(3)));
        assert!(s.is_empty());
        assert_eq!(s.stats().invalidations.get(), 1);
        // Slice lines are clean Shared: never written back.
        assert_eq!(s.stats().writebacks.get(), 0);
    }

    #[test]
    fn capacity_victims_are_silent_clean_drops() {
        // 1-set direct test: 64 lines capacity, all to one slice.
        let mut s = LlcSlice::new(&LlcConfig::shared_slice(4 * 1024, 16));
        for i in 0..300u64 {
            s.fill(LineAddr::new(i));
        }
        assert_eq!(s.len(), 64);
        assert!(s.stats().evictions.get() > 0);
        assert_eq!(s.stats().writebacks.get(), 0);
    }

    #[test]
    fn export_restore_roundtrips() {
        let mut s = slice();
        for i in 0..10u64 {
            s.fill(LineAddr::new(i * 3));
        }
        s.lookup(LineAddr::new(3));
        let snap = s.export_state();
        let mut restored = slice();
        restored.restore_state(&snap);
        assert_eq!(restored.export_state(), snap);
        assert_eq!(restored.len(), s.len());
    }
}

//! Replacement policies for set-associative arrays.

use std::fmt;

/// Which resident line of a full set is chosen as the victim.
///
/// The policy operates on per-way metadata maintained by
/// [`crate::SetAssocCache`]: the insertion sequence number and the
/// last-touch sequence number of each way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used way (default; what the paper's caches
    /// and AMD's probe filter use).
    #[default]
    Lru,
    /// Evict the way that was filled earliest, ignoring later touches.
    Fifo,
    /// Evict a pseudo-random way chosen by hashing the access sequence
    /// number (deterministic for a given access history).
    Random,
}

impl ReplacementPolicy {
    /// Selects the victim way.
    ///
    /// `last_touch[i]` is the sequence number of the most recent hit on way
    /// `i`, `inserted[i]` the sequence number at which way `i` was filled,
    /// and `tick` the current access sequence number.
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty or have different lengths.
    pub fn pick_victim(self, last_touch: &[u64], inserted: &[u64], tick: u64) -> usize {
        assert!(
            !last_touch.is_empty(),
            "cannot pick a victim from an empty set"
        );
        assert_eq!(
            last_touch.len(),
            inserted.len(),
            "metadata slices must match"
        );
        match self {
            ReplacementPolicy::Lru => last_touch
                .iter()
                .enumerate()
                .min_by_key(|(i, touch)| (**touch, *i))
                .map(|(i, _)| i)
                .expect("non-empty"),
            ReplacementPolicy::Fifo => inserted
                .iter()
                .enumerate()
                .min_by_key(|(i, ins)| (**ins, *i))
                .map(|(i, _)| i)
                .expect("non-empty"),
            ReplacementPolicy::Random => {
                // SplitMix64 hash of the tick: deterministic but uncorrelated
                // with the access pattern.
                let mut z = tick.wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) as usize % last_touch.len()
            }
        }
    }

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Fifo => "fifo",
            ReplacementPolicy::Random => "random",
        }
    }
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_picks_least_recently_touched() {
        let last_touch = [10, 3, 7, 9];
        let inserted = [0, 1, 2, 3];
        assert_eq!(
            ReplacementPolicy::Lru.pick_victim(&last_touch, &inserted, 11),
            1
        );
    }

    #[test]
    fn lru_breaks_ties_by_way_index() {
        let last_touch = [5, 5, 5];
        let inserted = [0, 1, 2];
        assert_eq!(
            ReplacementPolicy::Lru.pick_victim(&last_touch, &inserted, 6),
            0
        );
    }

    #[test]
    fn fifo_ignores_touches() {
        let last_touch = [100, 1, 50];
        let inserted = [2, 5, 0];
        assert_eq!(
            ReplacementPolicy::Fifo.pick_victim(&last_touch, &inserted, 101),
            2
        );
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let last_touch = [0, 0, 0, 0];
        let inserted = [0, 0, 0, 0];
        let a = ReplacementPolicy::Random.pick_victim(&last_touch, &inserted, 42);
        let b = ReplacementPolicy::Random.pick_victim(&last_touch, &inserted, 42);
        assert_eq!(a, b);
        assert!(a < 4);
        // Different ticks eventually pick different ways.
        let picks: std::collections::HashSet<usize> = (0..64)
            .map(|t| ReplacementPolicy::Random.pick_victim(&last_touch, &inserted, t))
            .collect();
        assert!(picks.len() > 1);
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn empty_set_panics() {
        ReplacementPolicy::Lru.pick_victim(&[], &[], 0);
    }

    #[test]
    fn names_and_default() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
        assert_eq!(ReplacementPolicy::Lru.to_string(), "lru");
        assert_eq!(ReplacementPolicy::Fifo.name(), "fifo");
        assert_eq!(ReplacementPolicy::Random.name(), "random");
    }
}

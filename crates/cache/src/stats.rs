//! Per-cache access counters.

use allarm_types::stats::{ratio, Counter};

/// Hit/miss/eviction counters for a single cache (or cache level).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the line.
    pub hits: Counter,
    /// Lookups that did not find the line.
    pub misses: Counter,
    /// Lines evicted to make room for a fill.
    pub evictions: Counter,
    /// Lines removed by an external invalidation (directory-initiated).
    pub invalidations: Counter,
    /// Dirty lines written back to the next level / memory.
    pub writebacks: Counter,
}

impl CacheStats {
    /// Total number of lookups.
    pub fn accesses(&self) -> u64 {
        self.hits.get() + self.misses.get()
    }

    /// Hit rate in `[0, 1]`; zero when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        ratio(self.hits.get(), self.accesses())
    }

    /// Miss rate in `[0, 1]`; zero when no accesses were made.
    pub fn miss_rate(&self) -> f64 {
        ratio(self.misses.get(), self.accesses())
    }

    /// Accumulates another set of counters into this one (used to aggregate
    /// per-core statistics into machine-wide totals).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
        self.writebacks += other.writebacks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_empty_and_nonempty() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
        s.hits.add(3);
        s.misses.add(1);
        assert_eq!(s.accesses(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = CacheStats::default();
        a.hits.add(1);
        a.evictions.add(2);
        let mut b = CacheStats::default();
        b.hits.add(10);
        b.misses.add(5);
        b.invalidations.add(7);
        b.writebacks.add(3);
        a.merge(&b);
        assert_eq!(a.hits.get(), 11);
        assert_eq!(a.misses.get(), 5);
        assert_eq!(a.evictions.get(), 2);
        assert_eq!(a.invalidations.get(), 7);
        assert_eq!(a.writebacks.get(), 3);
    }
}

//! Set-associative cache models for the ALLARM simulator.
//!
//! Each simulated core owns a small private cache hierarchy — split L1
//! instruction/data caches and a private, exclusive L2 — exactly as in
//! Table I of the paper. This crate provides:
//!
//! * [`CoherenceState`] — MOESI line states shared with the directory model;
//! * [`SetAssocCache`] — a generic set-associative array with pluggable
//!   replacement ([`ReplacementPolicy`]), used both for the data caches here
//!   and for the probe-filter array in `allarm-coherence`;
//! * [`CoreCaches`] — the per-core L1D + exclusive L2 hierarchy with the
//!   fill/eviction/invalidation operations the directory controller needs.
//!
//! # Examples
//!
//! ```
//! use allarm_cache::{CoreCaches, CoherenceState, AccessOutcome};
//! use allarm_types::{config::MachineConfig, addr::LineAddr};
//!
//! let cfg = MachineConfig::small_test();
//! let mut caches = CoreCaches::new(&cfg.l1d, &cfg.l2);
//! let line = LineAddr::new(0x40);
//!
//! // First access misses everywhere and must go to the directory.
//! assert_eq!(caches.access(line, false), AccessOutcome::Miss);
//! // After the fill, the line hits in L1.
//! caches.fill(line, CoherenceState::Exclusive);
//! assert_eq!(caches.access(line, false), AccessOutcome::L1Hit);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod hierarchy;
pub mod llc;
pub mod replacement;
pub mod set_assoc;
pub mod state;
pub mod stats;

pub use hierarchy::{AccessOutcome, CoherenceNeed, CoreCaches, CoreCachesState, ProbeOutcome};
pub use llc::LlcSlice;
pub use replacement::ReplacementPolicy;
pub use set_assoc::{EvictedLine, SetAssocCache, SetAssocState, WayState};
pub use state::CoherenceState;
pub use stats::CacheStats;

//! MOESI coherence states for cached lines.

use std::fmt;

/// The MOESI state of a cache line in a private cache.
///
/// The Hammer protocol used by the paper is a broadcast MOESI protocol; the
/// directory (probe filter) tracks whether a line is cached at all, while the
/// caches themselves carry the MOESI state. The simulator uses the same
/// split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoherenceState {
    /// The line is the only cached copy and is dirty with respect to DRAM.
    Modified,
    /// The line is dirty and this cache is responsible for supplying it, but
    /// other shared copies may exist.
    Owned,
    /// The line is the only cached copy and is clean.
    Exclusive,
    /// A clean, potentially replicated copy.
    Shared,
    /// Not present.
    Invalid,
}

impl CoherenceState {
    /// True if this state holds data that differs from DRAM and must be
    /// written back (or supplied to a requester) on eviction/invalidation.
    pub fn is_dirty(self) -> bool {
        matches!(self, CoherenceState::Modified | CoherenceState::Owned)
    }

    /// True if the holder may silently satisfy a store without asking the
    /// directory for write permission.
    pub fn can_write(self) -> bool {
        matches!(self, CoherenceState::Modified | CoherenceState::Exclusive)
    }

    /// True if a read hit can be satisfied locally.
    pub fn can_read(self) -> bool {
        !matches!(self, CoherenceState::Invalid)
    }

    /// The state the holder transitions to when another core performs a read
    /// (GetS) of the line: dirty copies become Owned, clean copies become
    /// Shared, and an invalid line stays invalid.
    pub fn after_remote_read(self) -> CoherenceState {
        match self {
            CoherenceState::Modified | CoherenceState::Owned => CoherenceState::Owned,
            CoherenceState::Exclusive | CoherenceState::Shared => CoherenceState::Shared,
            CoherenceState::Invalid => CoherenceState::Invalid,
        }
    }

    /// One-letter MOESI abbreviation.
    pub fn letter(self) -> char {
        match self {
            CoherenceState::Modified => 'M',
            CoherenceState::Owned => 'O',
            CoherenceState::Exclusive => 'E',
            CoherenceState::Shared => 'S',
            CoherenceState::Invalid => 'I',
        }
    }
}

impl fmt::Display for CoherenceState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_states() {
        assert!(CoherenceState::Modified.is_dirty());
        assert!(CoherenceState::Owned.is_dirty());
        assert!(!CoherenceState::Exclusive.is_dirty());
        assert!(!CoherenceState::Shared.is_dirty());
        assert!(!CoherenceState::Invalid.is_dirty());
    }

    #[test]
    fn write_permission() {
        assert!(CoherenceState::Modified.can_write());
        assert!(CoherenceState::Exclusive.can_write());
        assert!(!CoherenceState::Owned.can_write());
        assert!(!CoherenceState::Shared.can_write());
        assert!(!CoherenceState::Invalid.can_write());
    }

    #[test]
    fn read_permission() {
        assert!(CoherenceState::Shared.can_read());
        assert!(!CoherenceState::Invalid.can_read());
    }

    #[test]
    fn remote_read_transitions() {
        assert_eq!(
            CoherenceState::Modified.after_remote_read(),
            CoherenceState::Owned
        );
        assert_eq!(
            CoherenceState::Owned.after_remote_read(),
            CoherenceState::Owned
        );
        assert_eq!(
            CoherenceState::Exclusive.after_remote_read(),
            CoherenceState::Shared
        );
        assert_eq!(
            CoherenceState::Shared.after_remote_read(),
            CoherenceState::Shared
        );
        assert_eq!(
            CoherenceState::Invalid.after_remote_read(),
            CoherenceState::Invalid
        );
    }

    #[test]
    fn display_letters() {
        let all = [
            CoherenceState::Modified,
            CoherenceState::Owned,
            CoherenceState::Exclusive,
            CoherenceState::Shared,
            CoherenceState::Invalid,
        ];
        let letters: String = all.iter().map(|s| s.letter()).collect();
        assert_eq!(letters, "MOESI");
        assert_eq!(CoherenceState::Shared.to_string(), "S");
    }
}

//! Versioned on-disk trace files: capture and replay of memory-reference
//! streams.
//!
//! The paper's experiments replay address streams; this module lets those
//! streams come from *files* instead of the synthetic [`crate::TraceGenerator`],
//! so real captured traces (or adversarial hand-written ones) can drive the
//! coherence substrate through [`crate::WorkloadSpec::TraceFile`].
//!
//! Two interchangeable encodings share one logical model (a [`TraceHeader`]
//! plus per-thread access streams):
//!
//! * **Text** (`allarm-trace v1 text`) — human-writable. A header of
//!   directive lines, then one `core r|w hexaddr` record per line. Blank
//!   lines and `#` comments are ignored after the magic line. The
//!   `checksum` directive is optional, so a hand-written trace does not
//!   need to pre-compute it (a present checksum is always verified).
//! * **Binary** (magic `ALLARMTR`) — compact. After the header, each
//!   thread's addresses are delta-encoded against the previous address and
//!   written as LEB128 varints with the read/write flag folded into the low
//!   bit, so sequential scans cost ~2 bytes per reference. The checksum is
//!   mandatory.
//!
//! Both headers carry the thread count, per-thread core pinning and access
//! counts, and (binary always, text optionally) a checksum of the decoded
//! stream — so [`read_header`] answers "how many cores does this trace
//! need, and is it the file I recorded?" without decoding the body.
//!
//! The checksum is [`Workload::checksum`]: identical whether the workload
//! was generated in-process or round-tripped through either file format,
//! which is what lets a replayed trace's simulation report be byte-identical
//! to the direct run's.
//!
//! # Examples
//!
//! ```
//! use allarm_workloads::{Benchmark, TraceGenerator};
//! use allarm_workloads::tracefile::{self, TraceFormat};
//!
//! let workload = TraceGenerator::new(2, 100, 7).generate(Benchmark::Barnes);
//! let mut buf = Vec::new();
//! tracefile::write_trace(&mut buf, &workload, TraceFormat::Binary).unwrap();
//! let (header, replayed) = tracefile::parse_trace(&buf[..]).unwrap();
//! assert_eq!(replayed, workload);
//! assert_eq!(header.checksum, Some(workload.checksum()));
//! ```

use crate::trace::{MemAccess, ThreadTrace, Workload};
use allarm_types::ids::{CoreId, ThreadId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// The trace-file format version this build reads and writes.
pub const TRACE_VERSION: u16 = 1;

/// Magic bytes opening a binary trace file.
const BINARY_MAGIC: &[u8; 8] = b"ALLARMTR";

/// Magic line opening a text trace file (its first 8 bytes are the sniff
/// key, so it must stay the very first line).
const TEXT_MAGIC: &str = "allarm-trace v1 text";

/// Caps on header fields while parsing untrusted files, so a corrupt
/// header cannot demand absurd allocations before the error surfaces.
const MAX_NAME_BYTES: u64 = 4096;
const MAX_THREADS: u64 = u16::MAX as u64 + 1;

/// The on-disk encoding of a trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceFormat {
    /// Human-writable `core r|w hexaddr` lines.
    Text,
    /// Delta/varint-packed per-thread streams.
    Binary,
}

impl TraceFormat {
    /// Lower-case name, used in messages and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            TraceFormat::Text => "text",
            TraceFormat::Binary => "binary",
        }
    }

    /// Parses a CLI-style name (`"text"` / `"binary"`, case-insensitive).
    pub fn from_cli_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "text" => Some(TraceFormat::Text),
            "binary" => Some(TraceFormat::Binary),
            _ => None,
        }
    }
}

/// One thread declared by a trace header: its identity, core pinning and
/// access count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceThread {
    /// The software thread's identity.
    pub thread: ThreadId,
    /// The core the thread is pinned to (distinct per thread).
    pub core: CoreId,
    /// Number of references this thread's stream holds.
    pub accesses: u64,
}

/// Everything a trace file declares ahead of its body. Enough to validate
/// a scenario (machine size, expected volume) without decoding a single
/// record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// The encoding the file uses.
    pub format: TraceFormat,
    /// Format version (currently always [`TRACE_VERSION`]).
    pub version: u16,
    /// Workload name, propagated into [`Workload::name`] and reports.
    pub name: String,
    /// Declared threads, in body order.
    pub threads: Vec<TraceThread>,
    /// [`Workload::checksum`] of the decoded stream. Always present in
    /// binary files; optional in (hand-written) text files.
    pub checksum: Option<u64>,
}

impl TraceHeader {
    /// The highest pinned core index plus one — the minimum machine size
    /// able to replay this trace.
    pub fn cores_required(&self) -> usize {
        self.threads
            .iter()
            .map(|t| t.core.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// Total references across all threads.
    pub fn total_accesses(&self) -> u64 {
        self.threads.iter().map(|t| t.accesses).sum()
    }

    /// The largest single thread's reference count (the per-thread "trace
    /// length" in the sense of generated workloads).
    pub fn max_thread_accesses(&self) -> u64 {
        self.threads.iter().map(|t| t.accesses).max().unwrap_or(0)
    }

    /// Structural validation: at least one thread, and no duplicated
    /// thread ids or cores (text records are attributed by core, so a
    /// shared core would be ambiguous).
    fn validate(&self) -> Result<(), TraceError> {
        if self.threads.is_empty() {
            return Err(TraceError::new("header declares no threads"));
        }
        let mut cores: Vec<CoreId> = self.threads.iter().map(|t| t.core).collect();
        cores.sort_unstable();
        if cores.windows(2).any(|w| w[0] == w[1]) {
            return Err(TraceError::new("header pins two threads to one core"));
        }
        let mut ids: Vec<ThreadId> = self.threads.iter().map(|t| t.thread).collect();
        ids.sort_unstable();
        if ids.windows(2).any(|w| w[0] == w[1]) {
            return Err(TraceError::new("header declares a thread id twice"));
        }
        Ok(())
    }
}

/// A malformed, truncated or checksum-failing trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    msg: String,
    /// 1-based text line the error was found on, when known.
    line: Option<usize>,
}

impl TraceError {
    fn new(msg: impl Into<String>) -> Self {
        TraceError {
            msg: msg.into(),
            line: None,
        }
    }

    fn at_line(msg: impl Into<String>, line: usize) -> Self {
        TraceError {
            msg: msg.into(),
            line: Some(line),
        }
    }

    /// The error description (without the line prefix).
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {line}: {}", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::new(format!("i/o error: {e}"))
    }
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// Reads and validates just the header of a trace file, sniffing the
/// format from the magic bytes. The body is not decoded (for text files,
/// not even read).
///
/// # Errors
///
/// Returns a [`TraceError`] for unreadable files, unknown magic,
/// unsupported versions, or structurally invalid headers.
pub fn read_header(path: impl AsRef<Path>) -> Result<TraceHeader, TraceError> {
    let file = std::fs::File::open(path)?;
    parse_inner(file, false).map(|(header, _)| header)
}

/// Reads, decodes and verifies a whole trace file, sniffing the format.
/// The decoded stream's [`Workload::checksum`] is verified against the
/// header's (when the header carries one) and the per-thread counts are
/// verified against the body.
///
/// # Errors
///
/// Returns a [`TraceError`] for anything [`read_header`] rejects, plus
/// truncated or overlong bodies, malformed records, and checksum
/// mismatches.
pub fn read_workload(path: impl AsRef<Path>) -> Result<(TraceHeader, Workload), TraceError> {
    let file = std::fs::File::open(path)?;
    parse_trace(file)
}

/// [`read_workload`] over any reader (used by tests and in-memory
/// round-trips).
///
/// # Errors
///
/// Same conditions as [`read_workload`].
pub fn parse_trace(reader: impl Read) -> Result<(TraceHeader, Workload), TraceError> {
    let (header, workload) = parse_inner(reader, true)?;
    let workload = workload.expect("decode_body = true always yields a workload");
    if let Some(expected) = header.checksum {
        let actual = workload.checksum();
        if actual != expected {
            return Err(TraceError::new(format!(
                "checksum mismatch: header says {expected:016x}, body decodes to {actual:016x}"
            )));
        }
    }
    Ok((header, workload))
}

/// Shared reader core: sniffs the format from the first (up to) 8 bytes,
/// then parses the header and — with `decode_body` — the body. Collecting
/// the sniff prefix with a `read` loop (instead of trusting one `fill_buf`
/// call to return 8 bytes) keeps arbitrary readers — pipes, chained
/// readers — correct; for text input the prefix is chained back in front
/// of the reader.
fn parse_inner(
    mut reader: impl Read,
    decode_body: bool,
) -> Result<(TraceHeader, Option<Workload>), TraceError> {
    let mut prefix = [0u8; 8];
    let mut got = 0;
    while got < prefix.len() {
        let n = reader.read(&mut prefix[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    if got == prefix.len() && &prefix == BINARY_MAGIC {
        let mut reader = BufReader::new(reader);
        let header = read_binary_header(&mut reader)?;
        let workload = if decode_body {
            Some(read_binary_body(&mut reader, &header)?)
        } else {
            None
        };
        return Ok((header, workload));
    }
    if got > 0 && prefix[..got] == TEXT_MAGIC.as_bytes()[..got.min(prefix.len())] {
        let mut reader = BufReader::new(std::io::Cursor::new(prefix[..got].to_vec()).chain(reader));
        let (header, next_line) = read_text_header(&mut reader)?;
        let workload = if decode_body {
            Some(read_text_body(&mut reader, &header, next_line)?)
        } else {
            None
        };
        return Ok((header, workload));
    }
    Err(TraceError::new(
        "not an ALLARM trace file (expected the `ALLARMTR` binary magic or an \
         `allarm-trace v1 text` first line)",
    ))
}

// -- text ------------------------------------------------------------------

/// Parses the text header: the magic line, then `name` / `thread` /
/// `checksum` directives up to the first record line. Returns the header
/// and the first record line (with its 1-based number), which the body
/// parser must not lose.
#[allow(clippy::type_complexity)]
fn read_text_header(
    reader: &mut BufReader<impl Read>,
) -> Result<(TraceHeader, Option<(usize, String)>), TraceError> {
    let mut lines = reader.lines().enumerate();
    let magic = match lines.next() {
        Some((_, Ok(line))) => line,
        Some((_, Err(e))) => return Err(e.into()),
        None => return Err(TraceError::new("empty trace file")),
    };
    if magic.trim_end() != TEXT_MAGIC {
        return Err(TraceError::at_line(
            format!(
                "bad magic line `{}` (expected `{TEXT_MAGIC}`)",
                magic.trim_end()
            ),
            1,
        ));
    }

    let mut name: Option<String> = None;
    let mut threads = Vec::new();
    let mut checksum: Option<u64> = None;
    let mut first_record: Option<(usize, String)> = None;
    for (index, line) in lines {
        let line = line?;
        let lineno = index + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut words = trimmed.split_whitespace();
        match words.next() {
            Some("name") => {
                let rest = trimmed["name".len()..].trim();
                if rest.is_empty() {
                    return Err(TraceError::at_line(
                        "`name` directive needs a value",
                        lineno,
                    ));
                }
                name = Some(rest.to_string());
            }
            Some("thread") => {
                let spec: Vec<&str> = words.collect();
                let parsed = match spec.as_slice() {
                    [t, "core", c, "accesses", n] => {
                        match (t.parse::<u16>(), c.parse::<u16>(), n.parse::<u64>()) {
                            (Ok(t), Ok(c), Ok(n)) => Some(TraceThread {
                                thread: ThreadId::new(t),
                                core: CoreId::new(c),
                                accesses: n,
                            }),
                            _ => None,
                        }
                    }
                    _ => None,
                };
                match parsed {
                    Some(t) => threads.push(t),
                    None => {
                        return Err(TraceError::at_line(
                            "malformed `thread` directive (expected \
                             `thread <id> core <core> accesses <count>`)",
                            lineno,
                        ))
                    }
                }
            }
            Some("checksum") => {
                let value = words.next().and_then(|v| u64::from_str_radix(v, 16).ok());
                match value {
                    Some(v) => checksum = Some(v),
                    None => {
                        return Err(TraceError::at_line(
                            "malformed `checksum` directive (expected 16 hex digits)",
                            lineno,
                        ))
                    }
                }
            }
            Some(word) if word.chars().next().is_some_and(|c| c.is_ascii_digit()) => {
                first_record = Some((lineno, line));
                break;
            }
            Some(word) => {
                return Err(TraceError::at_line(
                    format!("unknown header directive `{word}`"),
                    lineno,
                ))
            }
            None => unreachable!("non-empty trimmed line has a first word"),
        }
    }

    let header = TraceHeader {
        format: TraceFormat::Text,
        version: TRACE_VERSION,
        name: name.ok_or_else(|| TraceError::new("header is missing the `name` directive"))?,
        threads,
        checksum,
    };
    header.validate()?;
    Ok((header, first_record))
}

/// Parses `core r|w hexaddr` record lines into per-thread traces, checking
/// the final counts against the header.
fn read_text_body(
    reader: &mut BufReader<impl Read>,
    header: &TraceHeader,
    first_record: Option<(usize, String)>,
) -> Result<Workload, TraceError> {
    let mut traces: Vec<ThreadTrace> = header
        .threads
        .iter()
        .map(|t| ThreadTrace {
            thread: t.thread,
            core: t.core,
            accesses: Vec::with_capacity(usize::try_from(t.accesses).unwrap_or(0).min(1 << 20)),
        })
        .collect();
    let by_core: HashMap<CoreId, usize> = header
        .threads
        .iter()
        .enumerate()
        .map(|(i, t)| (t.core, i))
        .collect();

    let first_lineno = first_record.as_ref().map_or(0, |(n, _)| *n);
    let head = first_record.map(|(_, line)| Ok(line));
    for (offset, line) in head.into_iter().chain(reader.lines()).enumerate() {
        let line = line?;
        let lineno = first_lineno + offset;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut words = trimmed.split_whitespace();
        let core = words.next().and_then(|w| w.parse::<u16>().ok());
        let write = match words.next() {
            Some("r") => Some(false),
            Some("w") => Some(true),
            _ => None,
        };
        let addr = words.next().and_then(|w| {
            let w = w.strip_prefix("0x").unwrap_or(w);
            u64::from_str_radix(w, 16).ok()
        });
        let (Some(core), Some(write), Some(addr), None) = (core, write, addr, words.next()) else {
            return Err(TraceError::at_line(
                format!("malformed record `{trimmed}` (expected `<core> r|w <hexaddr>`)"),
                lineno,
            ));
        };
        let Some(&slot) = by_core.get(&CoreId::new(core)) else {
            return Err(TraceError::at_line(
                format!("record names core {core}, which no header thread is pinned to"),
                lineno,
            ));
        };
        traces[slot].accesses.push(MemAccess {
            vaddr: allarm_types::addr::VirtAddr::new(addr),
            write,
        });
    }

    for (trace, declared) in traces.iter().zip(&header.threads) {
        if trace.accesses.len() as u64 != declared.accesses {
            return Err(TraceError::new(format!(
                "thread {} declares {} accesses but the body holds {} — truncated \
                 or miscounted trace",
                declared.thread.raw(),
                declared.accesses,
                trace.accesses.len()
            )));
        }
    }
    Ok(Workload {
        name: header.name.clone(),
        threads: traces,
    })
}

// -- binary ----------------------------------------------------------------

/// Parses the binary header (the magic is already consumed by the sniff).
fn read_binary_header(reader: &mut impl Read) -> Result<TraceHeader, TraceError> {
    let version = u16::from_le_bytes(read_array(reader, "version")?);
    if version != TRACE_VERSION {
        return Err(TraceError::new(format!(
            "unsupported trace version {version} (this build reads v{TRACE_VERSION})"
        )));
    }
    let name_len = read_varint(reader, "name length")?;
    if name_len > MAX_NAME_BYTES {
        return Err(TraceError::new(format!(
            "name length {name_len} exceeds the {MAX_NAME_BYTES}-byte cap — corrupt header?"
        )));
    }
    let mut name_bytes = vec![0u8; name_len as usize];
    reader
        .read_exact(&mut name_bytes)
        .map_err(|_| TraceError::new("truncated header: name cut short"))?;
    let name = String::from_utf8(name_bytes)
        .map_err(|_| TraceError::new("workload name is not valid UTF-8"))?;

    let thread_count = read_varint(reader, "thread count")?;
    if thread_count > MAX_THREADS {
        return Err(TraceError::new(format!(
            "thread count {thread_count} exceeds the {MAX_THREADS} cap — corrupt header?"
        )));
    }
    let mut threads = Vec::with_capacity(thread_count as usize);
    for _ in 0..thread_count {
        let thread = read_varint(reader, "thread id")?;
        let core = read_varint(reader, "core id")?;
        let accesses = read_varint(reader, "access count")?;
        let (Ok(thread), Ok(core)) = (u16::try_from(thread), u16::try_from(core)) else {
            return Err(TraceError::new(
                "thread or core id out of the u16 range — corrupt header?",
            ));
        };
        threads.push(TraceThread {
            thread: ThreadId::new(thread),
            core: CoreId::new(core),
            accesses,
        });
    }
    let checksum = u64::from_le_bytes(read_array(reader, "checksum")?);
    let header = TraceHeader {
        format: TraceFormat::Binary,
        version,
        name,
        threads,
        checksum: Some(checksum),
    };
    header.validate()?;
    Ok(header)
}

/// Decodes the per-thread delta/varint streams declared by `header`.
fn read_binary_body(reader: &mut impl Read, header: &TraceHeader) -> Result<Workload, TraceError> {
    let mut traces = Vec::with_capacity(header.threads.len());
    for declared in &header.threads {
        let mut accesses =
            Vec::with_capacity(usize::try_from(declared.accesses).unwrap_or(0).min(1 << 20));
        let mut addr: u64 = 0;
        for _ in 0..declared.accesses {
            let packed = read_varint_wide(reader, "trace record")?;
            let write = (packed & 1) == 1;
            let zigzagged = (packed >> 1) as u64;
            let delta = ((zigzagged >> 1) as i64) ^ -((zigzagged & 1) as i64);
            addr = addr.wrapping_add(delta as u64);
            accesses.push(MemAccess {
                vaddr: allarm_types::addr::VirtAddr::new(addr),
                write,
            });
        }
        traces.push(ThreadTrace {
            thread: declared.thread,
            core: declared.core,
            accesses,
        });
    }
    let mut trailing = [0u8; 1];
    if reader.read(&mut trailing)? != 0 {
        return Err(TraceError::new(
            "trailing bytes after the last declared record — header/body mismatch",
        ));
    }
    Ok(Workload {
        name: header.name.clone(),
        threads: traces,
    })
}

fn read_array<const N: usize>(reader: &mut impl Read, what: &str) -> Result<[u8; N], TraceError> {
    let mut buf = [0u8; N];
    reader
        .read_exact(&mut buf)
        .map_err(|_| TraceError::new(format!("truncated trace: {what} cut short")))?;
    Ok(buf)
}

/// Reads one LEB128 varint that must fit a `u64` (header fields).
fn read_varint(reader: &mut impl Read, what: &str) -> Result<u64, TraceError> {
    let wide = read_varint_wide(reader, what)?;
    u64::try_from(wide).map_err(|_| TraceError::new(format!("{what} overflows 64 bits")))
}

/// Reads one LEB128 varint up to 128 bits (trace records carry a zigzagged
/// 64-bit delta plus a flag bit, which can need 66 bits).
fn read_varint_wide(reader: &mut impl Read, what: &str) -> Result<u128, TraceError> {
    let mut value: u128 = 0;
    let mut shift = 0u32;
    loop {
        let [byte] = read_array::<1>(reader, what)?;
        if shift >= 128 - 7 && (byte >> (128 - shift)) != 0 {
            return Err(TraceError::new(format!("{what} varint overflows 128 bits")));
        }
        value |= u128::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift >= 128 {
            return Err(TraceError::new(format!("{what} varint is too long")));
        }
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Writes `workload` to `out` in the given format. The header (including
/// the [`Workload::checksum`]) is derived from the workload, so a
/// `write_trace` → [`parse_trace`] round trip reproduces the workload
/// exactly in either format.
///
/// # Errors
///
/// Returns the first I/O error, or `InvalidInput` if two threads share a
/// core (trace records are attributed by core, so the file could not be
/// decoded unambiguously).
pub fn write_trace(
    out: &mut impl Write,
    workload: &Workload,
    format: TraceFormat,
) -> std::io::Result<()> {
    let header = TraceHeader {
        format,
        version: TRACE_VERSION,
        name: workload.name.clone(),
        threads: workload
            .threads
            .iter()
            .map(|t| TraceThread {
                thread: t.thread,
                core: t.core,
                accesses: t.accesses.len() as u64,
            })
            .collect(),
        checksum: Some(workload.checksum()),
    };
    header.validate().map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("unwritable workload: {e}"),
        )
    })?;
    match format {
        TraceFormat::Text => write_text(out, workload, &header),
        TraceFormat::Binary => write_binary(out, workload, &header),
    }
}

/// [`write_trace`] to a (created or truncated) file, buffered and flushed.
///
/// # Errors
///
/// Same conditions as [`write_trace`], plus the create itself.
pub fn write_trace_file(
    path: impl AsRef<Path>,
    workload: &Workload,
    format: TraceFormat,
) -> std::io::Result<()> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_trace(&mut out, workload, format)?;
    out.flush()
}

fn write_text(
    out: &mut impl Write,
    workload: &Workload,
    header: &TraceHeader,
) -> std::io::Result<()> {
    writeln!(out, "{TEXT_MAGIC}")?;
    writeln!(out, "name {}", header.name)?;
    for t in &header.threads {
        writeln!(
            out,
            "thread {} core {} accesses {}",
            t.thread.raw(),
            t.core.raw(),
            t.accesses
        )?;
    }
    writeln!(
        out,
        "checksum {:016x}",
        header.checksum.expect("writer always sets it")
    )?;
    for t in &workload.threads {
        let core = t.core.raw();
        for a in &t.accesses {
            writeln!(
                out,
                "{core} {} {:x}",
                if a.write { 'w' } else { 'r' },
                a.vaddr.raw()
            )?;
        }
    }
    Ok(())
}

fn write_binary(
    out: &mut impl Write,
    workload: &Workload,
    header: &TraceHeader,
) -> std::io::Result<()> {
    out.write_all(BINARY_MAGIC)?;
    out.write_all(&TRACE_VERSION.to_le_bytes())?;
    write_varint(out, header.name.len() as u128)?;
    out.write_all(header.name.as_bytes())?;
    write_varint(out, header.threads.len() as u128)?;
    for t in &header.threads {
        write_varint(out, u128::from(t.thread.raw()))?;
        write_varint(out, u128::from(t.core.raw()))?;
        write_varint(out, u128::from(t.accesses))?;
    }
    out.write_all(
        &header
            .checksum
            .expect("writer always sets it")
            .to_le_bytes(),
    )?;
    for t in &workload.threads {
        let mut prev: u64 = 0;
        for a in &t.accesses {
            let delta = a.vaddr.raw().wrapping_sub(prev) as i64;
            prev = a.vaddr.raw();
            let zigzagged = ((delta << 1) ^ (delta >> 63)) as u64;
            let packed = (u128::from(zigzagged) << 1) | u128::from(a.write);
            write_varint(out, packed)?;
        }
    }
    Ok(())
}

fn write_varint(out: &mut impl Write, mut value: u128) -> std::io::Result<()> {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            return out.write_all(&[byte]);
        }
        out.write_all(&[byte | 0x80])?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Benchmark;
    use crate::trace::TraceGenerator;

    fn sample() -> Workload {
        TraceGenerator::new(3, 400, 11).generate(Benchmark::Cholesky)
    }

    fn encode(workload: &Workload, format: TraceFormat) -> Vec<u8> {
        let mut buf = Vec::new();
        write_trace(&mut buf, workload, format).unwrap();
        buf
    }

    #[test]
    fn both_formats_round_trip_exactly() {
        let workload = sample();
        for format in [TraceFormat::Text, TraceFormat::Binary] {
            let buf = encode(&workload, format);
            let (header, decoded) = parse_trace(&buf[..]).unwrap();
            assert_eq!(decoded, workload, "{}", format.name());
            assert_eq!(header.format, format);
            assert_eq!(header.name, workload.name);
            assert_eq!(header.checksum, Some(workload.checksum()));
            assert_eq!(header.total_accesses() as usize, workload.total_accesses());
            assert_eq!(header.cores_required(), workload.cores_required());
        }
    }

    #[test]
    fn binary_is_much_smaller_than_text() {
        let workload = sample();
        let text = encode(&workload, TraceFormat::Text).len();
        let binary = encode(&workload, TraceFormat::Binary).len();
        assert!(
            binary * 3 < text,
            "binary {binary} bytes should be well under a third of text {text}"
        );
    }

    #[test]
    fn hand_written_text_without_checksum_parses() {
        let text = "\
allarm-trace v1 text
# two cores bouncing one line
name pingpong
thread 0 core 0 accesses 2
thread 1 core 3 accesses 1

0 w 1000
3 r 0x1000
0 r 1040
";
        let (header, workload) = parse_trace(text.as_bytes()).unwrap();
        assert_eq!(header.checksum, None);
        assert_eq!(header.cores_required(), 4);
        assert_eq!(workload.name, "pingpong");
        assert_eq!(workload.threads[0].accesses.len(), 2);
        assert_eq!(workload.threads[1].accesses[0].vaddr.raw(), 0x1000);
        assert!(workload.threads[0].accesses[0].write);
        assert!(!workload.threads[0].accesses[1].write);
    }

    #[test]
    fn text_checksum_mismatch_is_detected() {
        let workload = sample();
        let text = String::from_utf8(encode(&workload, TraceFormat::Text)).unwrap();
        let tampered = text.replacen(
            &format!("checksum {:016x}", workload.checksum()),
            &format!("checksum {:016x}", workload.checksum() ^ 1),
            1,
        );
        assert_ne!(tampered, text);
        let err = parse_trace(tampered.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn truncated_text_body_is_detected() {
        let workload = sample();
        let text = String::from_utf8(encode(&workload, TraceFormat::Text)).unwrap();
        let truncated: String =
            text.lines()
                .take(text.lines().count() - 5)
                .fold(String::new(), |mut acc, line| {
                    acc.push_str(line);
                    acc.push('\n');
                    acc
                });
        let err = parse_trace(truncated.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn corrupt_binary_body_fails_the_checksum() {
        let workload = sample();
        let mut buf = encode(&workload, TraceFormat::Binary);
        let last = buf.len() - 1;
        buf[last] ^= 0x01; // flip the final record's write bit
        let err = parse_trace(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn truncated_binary_body_is_detected() {
        let workload = sample();
        let buf = encode(&workload, TraceFormat::Binary);
        let err = parse_trace(&buf[..buf.len() - 3]).unwrap_err();
        assert!(err.to_string().contains("cut short"), "{err}");
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(parse_trace(&b"NOTATRACE"[..]).is_err());
        assert!(parse_trace(&b""[..]).is_err());
        let err = parse_trace(&b"allarm-trace v7 text\nname x\n"[..]).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn unsupported_binary_version_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(BINARY_MAGIC);
        buf.extend_from_slice(&9u16.to_le_bytes());
        let err = parse_trace(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("version 9"), "{err}");
    }

    #[test]
    fn duplicate_core_pinning_is_rejected() {
        let text = "\
allarm-trace v1 text
name bad
thread 0 core 0 accesses 0
thread 1 core 0 accesses 0
";
        let err = parse_trace(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("one core"), "{err}");
        // And the writer refuses to produce such a file.
        let mut workload = sample();
        let shared = workload.threads[0].core;
        workload.threads[1].core = shared;
        let err = write_trace(&mut Vec::new(), &workload, TraceFormat::Text).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn record_for_unknown_core_is_rejected_with_its_line() {
        let text = "\
allarm-trace v1 text
name bad
thread 0 core 0 accesses 1
5 r 40
";
        let err = parse_trace(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 4"), "{err}");
        assert!(err.to_string().contains("core 5"), "{err}");
    }

    #[test]
    fn header_reads_do_not_need_the_body() {
        let workload = sample();
        let dir = std::env::temp_dir().join(format!("allarm-tracefile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for format in [TraceFormat::Text, TraceFormat::Binary] {
            let path = dir.join(format!("h.{}", format.name()));
            write_trace_file(&path, &workload, format).unwrap();
            let header = read_header(&path).unwrap();
            assert_eq!(header.format, format);
            assert_eq!(header.cores_required(), 3);
            assert_eq!(header.checksum, Some(workload.checksum()));
            let (_, decoded) = read_workload(&path).unwrap();
            assert_eq!(decoded, workload);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn format_names_round_trip() {
        for format in [TraceFormat::Text, TraceFormat::Binary] {
            assert_eq!(TraceFormat::from_cli_name(format.name()), Some(format));
        }
        assert_eq!(
            TraceFormat::from_cli_name("BINARY"),
            Some(TraceFormat::Binary)
        );
        assert_eq!(TraceFormat::from_cli_name("gzip"), None);
    }

    /// A reader that yields one byte per `read` call — the worst legal
    /// short-read behaviour (pipes, chained readers).
    struct OneByte<'a>(&'a [u8]);
    impl Read for OneByte<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.0.split_first() {
                Some((&b, rest)) if !buf.is_empty() => {
                    buf[0] = b;
                    self.0 = rest;
                    Ok(1)
                }
                _ => Ok(0),
            }
        }
    }

    #[test]
    fn short_reading_inputs_parse_identically() {
        let workload = sample();
        for format in [TraceFormat::Text, TraceFormat::Binary] {
            let buf = encode(&workload, format);
            let (header, decoded) = parse_trace(OneByte(&buf)).unwrap();
            assert_eq!(decoded, workload, "{}", format.name());
            assert_eq!(header.format, format);
        }
    }

    #[test]
    fn extreme_deltas_survive_the_binary_encoding() {
        let workload = Workload {
            name: "extremes".into(),
            threads: vec![ThreadTrace {
                thread: ThreadId::new(0),
                core: CoreId::new(0),
                accesses: vec![
                    MemAccess::load(u64::MAX),
                    MemAccess::store(0),
                    MemAccess::load(1 << 63),
                    MemAccess::store(u64::MAX - 1),
                ],
            }],
        };
        let buf = encode(&workload, TraceFormat::Binary);
        let (_, decoded) = parse_trace(&buf[..]).unwrap();
        assert_eq!(decoded, workload);
    }
}

//! Versioned on-disk trace files: capture and replay of memory-reference
//! streams.
//!
//! The paper's experiments replay address streams; this module lets those
//! streams come from *files* instead of the synthetic [`crate::TraceGenerator`],
//! so real captured traces (or adversarial hand-written ones) can drive the
//! coherence substrate through [`crate::WorkloadSpec::TraceFile`].
//!
//! Two interchangeable encodings share one logical model (a [`TraceHeader`]
//! plus per-thread access streams):
//!
//! * **Text** (`allarm-trace v1 text`) — human-writable. A header of
//!   directive lines, then one `core r|w hexaddr` record per line. Blank
//!   lines and `#` comments are ignored after the magic line. The
//!   `checksum` directive is optional, so a hand-written trace does not
//!   need to pre-compute it (a present checksum is always verified).
//! * **Binary** (magic `ALLARMTR`) — compact. After the header, each
//!   thread's addresses are delta-encoded against the previous address and
//!   written as LEB128 varints with the read/write flag folded into the low
//!   bit, so sequential scans cost ~2 bytes per reference. The checksum is
//!   mandatory.
//!
//! A third encoding, **binary v2** (same magic, version 2), keeps the v1
//! record encoding but chunks each thread's stream into fixed-count
//! **frames** and appends a seekable frame directory:
//!
//! ```text
//! front header (v1 fields + frame_len varint)
//! thread 0 frame 0 | thread 0 frame 1 | … | thread N frame M   (body)
//! directory: per thread, per frame {byte_len, records, first_vaddr, fnv64}
//! trailer: directory offset (u64 LE) + directory fnv64 (u64 LE) + "ALLARMIX"
//! ```
//!
//! Each frame restarts its delta chain from address zero, so any frame can
//! be decoded knowing only its bytes — which is what lets [`TraceSource`] /
//! [`FrameFeed`] replay a multi-hundred-million-access trace with one
//! frame of memory per thread, `trace_tool seek` jump mid-trace, and
//! snapshot restore reopen a trace at an arbitrary cursor.
//!
//! All headers carry the thread count, per-thread core pinning and access
//! counts, and (binary always, text optionally) a checksum of the decoded
//! stream — so [`read_header`] answers "how many cores does this trace
//! need, and is it the file I recorded?" without decoding the body (for v2,
//! without even touching the frame directory).
//!
//! The checksum is [`Workload::checksum`]: identical whether the workload
//! was generated in-process or round-tripped through either file format,
//! which is what lets a replayed trace's simulation report be byte-identical
//! to the direct run's.
//!
//! # Examples
//!
//! ```
//! use allarm_workloads::{Benchmark, TraceGenerator};
//! use allarm_workloads::tracefile::{self, TraceFormat};
//!
//! let workload = TraceGenerator::new(2, 100, 7).generate(Benchmark::Barnes);
//! let mut buf = Vec::new();
//! tracefile::write_trace(&mut buf, &workload, TraceFormat::Binary).unwrap();
//! let (header, replayed) = tracefile::parse_trace(&buf[..]).unwrap();
//! assert_eq!(replayed, workload);
//! assert_eq!(header.checksum, Some(workload.checksum()));
//! ```

use crate::trace::{ChecksumStream, MemAccess, ThreadTrace, Workload};
use allarm_types::ids::{CoreId, ThreadId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The unframed trace-file format version (text and v1 binary).
pub const TRACE_VERSION: u16 = 1;

/// The frame-chunked binary container version.
pub const TRACE_VERSION_V2: u16 = 2;

/// Records per frame a v2 writer uses unless told otherwise (~128 KiB of
/// encoded stream at the typical ~2 bytes/record).
pub const DEFAULT_FRAME_LEN: u64 = 1 << 16;

/// Magic bytes opening a binary trace file.
const BINARY_MAGIC: &[u8; 8] = b"ALLARMTR";

/// Magic bytes closing a v2 file (the fixed-size trailer ends with them,
/// so a truncated file is detectable before the directory is trusted).
const V2_TAIL_MAGIC: &[u8; 8] = b"ALLARMIX";

/// Size of the v2 trailer: directory offset + directory checksum + magic.
const V2_TRAILER_BYTES: u64 = 24;

/// Magic line opening a text trace file (its first 8 bytes are the sniff
/// key, so it must stay the very first line).
const TEXT_MAGIC: &str = "allarm-trace v1 text";

/// Caps on header fields while parsing untrusted files, so a corrupt
/// header cannot demand absurd allocations before the error surfaces.
const MAX_NAME_BYTES: u64 = 4096;
const MAX_THREADS: u64 = u16::MAX as u64 + 1;

/// The on-disk encoding of a trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceFormat {
    /// Human-writable `core r|w hexaddr` lines.
    Text,
    /// Delta/varint-packed per-thread streams.
    Binary,
    /// Frame-chunked delta/varint streams with a seekable directory; the
    /// only format [`TraceSource`] can stream-replay with bounded memory.
    BinaryV2,
}

impl TraceFormat {
    /// Lower-case name, used in messages and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            TraceFormat::Text => "text",
            TraceFormat::Binary => "binary",
            TraceFormat::BinaryV2 => "binary-v2",
        }
    }

    /// Parses a CLI-style name (`"text"` / `"binary"` / `"binary-v2"`,
    /// case-insensitive; `"v2"` is accepted as shorthand).
    pub fn from_cli_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "text" => Some(TraceFormat::Text),
            "binary" => Some(TraceFormat::Binary),
            "binary-v2" | "binaryv2" | "v2" => Some(TraceFormat::BinaryV2),
            _ => None,
        }
    }

    /// True for the frame-chunked container, the one format that supports
    /// streaming replay, mid-trace seeks and prefix truncation.
    pub fn is_streamable(self) -> bool {
        self == TraceFormat::BinaryV2
    }
}

/// One thread declared by a trace header: its identity, core pinning and
/// access count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceThread {
    /// The software thread's identity.
    pub thread: ThreadId,
    /// The core the thread is pinned to (distinct per thread).
    pub core: CoreId,
    /// Number of references this thread's stream holds.
    pub accesses: u64,
}

/// Everything a trace file declares ahead of its body. Enough to validate
/// a scenario (machine size, expected volume) without decoding a single
/// record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// The encoding the file uses.
    pub format: TraceFormat,
    /// Format version (currently always [`TRACE_VERSION`]).
    pub version: u16,
    /// Workload name, propagated into [`Workload::name`] and reports.
    pub name: String,
    /// Declared threads, in body order.
    pub threads: Vec<TraceThread>,
    /// [`Workload::checksum`] of the decoded stream. Always present in
    /// binary files; optional in (hand-written) text files.
    pub checksum: Option<u64>,
    /// Records per frame for the v2 container; `0` for unframed formats.
    pub frame_len: u64,
}

impl TraceHeader {
    /// The highest pinned core index plus one — the minimum machine size
    /// able to replay this trace.
    pub fn cores_required(&self) -> usize {
        self.threads
            .iter()
            .map(|t| t.core.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// Total references across all threads.
    pub fn total_accesses(&self) -> u64 {
        self.threads.iter().map(|t| t.accesses).sum()
    }

    /// The largest single thread's reference count (the per-thread "trace
    /// length" in the sense of generated workloads).
    pub fn max_thread_accesses(&self) -> u64 {
        self.threads.iter().map(|t| t.accesses).max().unwrap_or(0)
    }

    /// Structural validation: at least one thread, and no duplicated
    /// thread ids or cores (text records are attributed by core, so a
    /// shared core would be ambiguous).
    fn validate(&self) -> Result<(), TraceError> {
        if self.threads.is_empty() {
            return Err(TraceError::new("header declares no threads"));
        }
        let mut cores: Vec<CoreId> = self.threads.iter().map(|t| t.core).collect();
        cores.sort_unstable();
        if cores.windows(2).any(|w| w[0] == w[1]) {
            return Err(TraceError::new("header pins two threads to one core"));
        }
        let mut ids: Vec<ThreadId> = self.threads.iter().map(|t| t.thread).collect();
        ids.sort_unstable();
        if ids.windows(2).any(|w| w[0] == w[1]) {
            return Err(TraceError::new("header declares a thread id twice"));
        }
        if self.format == TraceFormat::BinaryV2 && self.frame_len == 0 {
            return Err(TraceError::new("v2 header declares a zero frame length"));
        }
        Ok(())
    }
}

/// A malformed, truncated or checksum-failing trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    msg: String,
    /// 1-based text line the error was found on, when known.
    line: Option<usize>,
}

impl TraceError {
    fn new(msg: impl Into<String>) -> Self {
        TraceError {
            msg: msg.into(),
            line: None,
        }
    }

    fn at_line(msg: impl Into<String>, line: usize) -> Self {
        TraceError {
            msg: msg.into(),
            line: Some(line),
        }
    }

    /// The error description (without the line prefix).
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {line}: {}", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::new(format!("i/o error: {e}"))
    }
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// Reads and validates just the header of a trace file, sniffing the
/// format from the magic bytes. The body is not decoded (for text files,
/// not even read).
///
/// # Errors
///
/// Returns a [`TraceError`] for unreadable files, unknown magic,
/// unsupported versions, or structurally invalid headers.
pub fn read_header(path: impl AsRef<Path>) -> Result<TraceHeader, TraceError> {
    let file = std::fs::File::open(path)?;
    parse_inner(file, false).map(|(header, _)| header)
}

/// Reads, decodes and verifies a whole trace file, sniffing the format.
/// The decoded stream's [`Workload::checksum`] is verified against the
/// header's (when the header carries one) and the per-thread counts are
/// verified against the body.
///
/// # Errors
///
/// Returns a [`TraceError`] for anything [`read_header`] rejects, plus
/// truncated or overlong bodies, malformed records, and checksum
/// mismatches.
pub fn read_workload(path: impl AsRef<Path>) -> Result<(TraceHeader, Workload), TraceError> {
    let file = std::fs::File::open(path)?;
    parse_trace(file)
}

/// [`read_workload`] over any reader (used by tests and in-memory
/// round-trips).
///
/// # Errors
///
/// Same conditions as [`read_workload`].
pub fn parse_trace(reader: impl Read) -> Result<(TraceHeader, Workload), TraceError> {
    let (header, workload) = parse_inner(reader, true)?;
    let workload = workload.expect("decode_body = true always yields a workload");
    if let Some(expected) = header.checksum {
        let actual = workload.checksum();
        if actual != expected {
            return Err(TraceError::new(format!(
                "checksum mismatch: header says {expected:016x}, body decodes to {actual:016x}"
            )));
        }
    }
    Ok((header, workload))
}

/// Shared reader core: sniffs the format from the first (up to) 8 bytes,
/// then parses the header and — with `decode_body` — the body. Collecting
/// the sniff prefix with a `read` loop (instead of trusting one `fill_buf`
/// call to return 8 bytes) keeps arbitrary readers — pipes, chained
/// readers — correct; for text input the prefix is chained back in front
/// of the reader.
fn parse_inner(
    mut reader: impl Read,
    decode_body: bool,
) -> Result<(TraceHeader, Option<Workload>), TraceError> {
    let mut prefix = [0u8; 8];
    let mut got = 0;
    while got < prefix.len() {
        let n = reader.read(&mut prefix[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    if got == prefix.len() && &prefix == BINARY_MAGIC {
        // Absolute offsets (for verifying the v2 frame directory) count
        // from the start of the file, magic included.
        let mut reader = CountingReader::with_offset(BufReader::new(reader), prefix.len() as u64);
        let header = read_binary_header(&mut reader)?;
        let workload = if decode_body {
            Some(if header.format == TraceFormat::BinaryV2 {
                read_binary_body_v2(&mut reader, &header)?
            } else {
                read_binary_body(&mut reader, &header)?
            })
        } else {
            None
        };
        return Ok((header, workload));
    }
    if got > 0 && prefix[..got] == TEXT_MAGIC.as_bytes()[..got.min(prefix.len())] {
        let mut reader = BufReader::new(std::io::Cursor::new(prefix[..got].to_vec()).chain(reader));
        let (header, next_line) = read_text_header(&mut reader)?;
        let workload = if decode_body {
            Some(read_text_body(&mut reader, &header, next_line)?)
        } else {
            None
        };
        return Ok((header, workload));
    }
    Err(TraceError::new(
        "not an ALLARM trace file (expected the `ALLARMTR` binary magic or an \
         `allarm-trace v1 text` first line)",
    ))
}

// -- text ------------------------------------------------------------------

/// Parses the text header: the magic line, then `name` / `thread` /
/// `checksum` directives up to the first record line. Returns the header
/// and the first record line (with its 1-based number), which the body
/// parser must not lose.
#[allow(clippy::type_complexity)]
fn read_text_header(
    reader: &mut BufReader<impl Read>,
) -> Result<(TraceHeader, Option<(usize, String)>), TraceError> {
    let mut lines = reader.lines().enumerate();
    let magic = match lines.next() {
        Some((_, Ok(line))) => line,
        Some((_, Err(e))) => return Err(e.into()),
        None => return Err(TraceError::new("empty trace file")),
    };
    if magic.trim_end() != TEXT_MAGIC {
        return Err(TraceError::at_line(
            format!(
                "bad magic line `{}` (expected `{TEXT_MAGIC}`)",
                magic.trim_end()
            ),
            1,
        ));
    }

    let mut name: Option<String> = None;
    let mut threads = Vec::new();
    let mut checksum: Option<u64> = None;
    let mut first_record: Option<(usize, String)> = None;
    for (index, line) in lines {
        let line = line?;
        let lineno = index + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut words = trimmed.split_whitespace();
        match words.next() {
            Some("name") => {
                let rest = trimmed["name".len()..].trim();
                if rest.is_empty() {
                    return Err(TraceError::at_line(
                        "`name` directive needs a value",
                        lineno,
                    ));
                }
                name = Some(rest.to_string());
            }
            Some("thread") => {
                let spec: Vec<&str> = words.collect();
                let parsed = match spec.as_slice() {
                    [t, "core", c, "accesses", n] => {
                        match (t.parse::<u16>(), c.parse::<u16>(), n.parse::<u64>()) {
                            (Ok(t), Ok(c), Ok(n)) => Some(TraceThread {
                                thread: ThreadId::new(t),
                                core: CoreId::new(c),
                                accesses: n,
                            }),
                            _ => None,
                        }
                    }
                    _ => None,
                };
                match parsed {
                    Some(t) => threads.push(t),
                    None => {
                        return Err(TraceError::at_line(
                            "malformed `thread` directive (expected \
                             `thread <id> core <core> accesses <count>`)",
                            lineno,
                        ))
                    }
                }
            }
            Some("checksum") => {
                let value = words.next().and_then(|v| u64::from_str_radix(v, 16).ok());
                match value {
                    Some(v) => checksum = Some(v),
                    None => {
                        return Err(TraceError::at_line(
                            "malformed `checksum` directive (expected 16 hex digits)",
                            lineno,
                        ))
                    }
                }
            }
            Some(word) if word.chars().next().is_some_and(|c| c.is_ascii_digit()) => {
                first_record = Some((lineno, line));
                break;
            }
            Some(word) => {
                return Err(TraceError::at_line(
                    format!("unknown header directive `{word}`"),
                    lineno,
                ))
            }
            None => unreachable!("non-empty trimmed line has a first word"),
        }
    }

    let header = TraceHeader {
        format: TraceFormat::Text,
        version: TRACE_VERSION,
        name: name.ok_or_else(|| TraceError::new("header is missing the `name` directive"))?,
        threads,
        checksum,
        frame_len: 0,
    };
    header.validate()?;
    Ok((header, first_record))
}

/// Parses `core r|w hexaddr` record lines into per-thread traces, checking
/// the final counts against the header.
fn read_text_body(
    reader: &mut BufReader<impl Read>,
    header: &TraceHeader,
    first_record: Option<(usize, String)>,
) -> Result<Workload, TraceError> {
    let mut traces: Vec<ThreadTrace> = header
        .threads
        .iter()
        .map(|t| ThreadTrace {
            thread: t.thread,
            core: t.core,
            accesses: Vec::with_capacity(usize::try_from(t.accesses).unwrap_or(0).min(1 << 20)),
        })
        .collect();
    let by_core: HashMap<CoreId, usize> = header
        .threads
        .iter()
        .enumerate()
        .map(|(i, t)| (t.core, i))
        .collect();

    let first_lineno = first_record.as_ref().map_or(0, |(n, _)| *n);
    let head = first_record.map(|(_, line)| Ok(line));
    for (offset, line) in head.into_iter().chain(reader.lines()).enumerate() {
        let line = line?;
        let lineno = first_lineno + offset;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut words = trimmed.split_whitespace();
        let core = words.next().and_then(|w| w.parse::<u16>().ok());
        let write = match words.next() {
            Some("r") => Some(false),
            Some("w") => Some(true),
            _ => None,
        };
        let addr = words.next().and_then(|w| {
            let w = w.strip_prefix("0x").unwrap_or(w);
            u64::from_str_radix(w, 16).ok()
        });
        let (Some(core), Some(write), Some(addr), None) = (core, write, addr, words.next()) else {
            return Err(TraceError::at_line(
                format!("malformed record `{trimmed}` (expected `<core> r|w <hexaddr>`)"),
                lineno,
            ));
        };
        let Some(&slot) = by_core.get(&CoreId::new(core)) else {
            return Err(TraceError::at_line(
                format!("record names core {core}, which no header thread is pinned to"),
                lineno,
            ));
        };
        traces[slot].accesses.push(MemAccess {
            vaddr: allarm_types::addr::VirtAddr::new(addr),
            write,
        });
    }

    for (trace, declared) in traces.iter().zip(&header.threads) {
        if trace.accesses.len() as u64 != declared.accesses {
            return Err(TraceError::new(format!(
                "thread {} declares {} accesses but the body holds {} — truncated \
                 or miscounted trace",
                declared.thread.raw(),
                declared.accesses,
                trace.accesses.len()
            )));
        }
    }
    Ok(Workload {
        name: header.name.clone(),
        threads: traces,
    })
}

// -- binary ----------------------------------------------------------------

/// Parses the binary header, v1 or v2 (the magic is already consumed by
/// the sniff).
fn read_binary_header(reader: &mut impl Read) -> Result<TraceHeader, TraceError> {
    let version = u16::from_le_bytes(read_array(reader, "version")?);
    if version != TRACE_VERSION && version != TRACE_VERSION_V2 {
        return Err(TraceError::new(format!(
            "unsupported trace version {version} (this build reads v{TRACE_VERSION} \
             and v{TRACE_VERSION_V2})"
        )));
    }
    let name_len = read_varint(reader, "name length")?;
    if name_len > MAX_NAME_BYTES {
        return Err(TraceError::new(format!(
            "name length {name_len} exceeds the {MAX_NAME_BYTES}-byte cap — corrupt header?"
        )));
    }
    let mut name_bytes = vec![0u8; name_len as usize];
    reader
        .read_exact(&mut name_bytes)
        .map_err(|_| TraceError::new("truncated header: name cut short"))?;
    let name = String::from_utf8(name_bytes)
        .map_err(|_| TraceError::new("workload name is not valid UTF-8"))?;

    let thread_count = read_varint(reader, "thread count")?;
    if thread_count > MAX_THREADS {
        return Err(TraceError::new(format!(
            "thread count {thread_count} exceeds the {MAX_THREADS} cap — corrupt header?"
        )));
    }
    let mut threads = Vec::with_capacity(thread_count as usize);
    for _ in 0..thread_count {
        let thread = read_varint(reader, "thread id")?;
        let core = read_varint(reader, "core id")?;
        let accesses = read_varint(reader, "access count")?;
        let (Ok(thread), Ok(core)) = (u16::try_from(thread), u16::try_from(core)) else {
            return Err(TraceError::new(
                "thread or core id out of the u16 range — corrupt header?",
            ));
        };
        threads.push(TraceThread {
            thread: ThreadId::new(thread),
            core: CoreId::new(core),
            accesses,
        });
    }
    let checksum = u64::from_le_bytes(read_array(reader, "checksum")?);
    let frame_len = if version == TRACE_VERSION_V2 {
        read_varint(reader, "frame length")?
    } else {
        0
    };
    let header = TraceHeader {
        format: if version == TRACE_VERSION_V2 {
            TraceFormat::BinaryV2
        } else {
            TraceFormat::Binary
        },
        version,
        name,
        threads,
        checksum: Some(checksum),
        frame_len,
    };
    header.validate()?;
    Ok(header)
}

/// Decodes one delta/varint record, advancing the delta chain in `addr`.
fn decode_record(reader: &mut impl Read, addr: &mut u64) -> Result<MemAccess, TraceError> {
    let packed = read_varint_wide(reader, "trace record")?;
    let write = (packed & 1) == 1;
    let zigzagged = (packed >> 1) as u64;
    let delta = ((zigzagged >> 1) as i64) ^ -((zigzagged & 1) as i64);
    *addr = addr.wrapping_add(delta as u64);
    Ok(MemAccess {
        vaddr: allarm_types::addr::VirtAddr::new(*addr),
        write,
    })
}

/// Decodes the per-thread delta/varint streams declared by `header`.
fn read_binary_body(reader: &mut impl Read, header: &TraceHeader) -> Result<Workload, TraceError> {
    let mut traces = Vec::with_capacity(header.threads.len());
    for declared in &header.threads {
        let mut accesses =
            Vec::with_capacity(usize::try_from(declared.accesses).unwrap_or(0).min(1 << 20));
        let mut addr: u64 = 0;
        for _ in 0..declared.accesses {
            accesses.push(decode_record(reader, &mut addr)?);
        }
        traces.push(ThreadTrace {
            thread: declared.thread,
            core: declared.core,
            accesses,
        });
    }
    let mut trailing = [0u8; 1];
    if reader.read(&mut trailing)? != 0 {
        return Err(TraceError::new(
            "trailing bytes after the last declared record — header/body mismatch",
        ));
    }
    Ok(Workload {
        name: header.name.clone(),
        threads: traces,
    })
}

/// Decodes a whole v2 body sequentially, then cross-checks every frame
/// against the directory and the trailer. This is the materialized
/// *reference* path; [`TraceSource`] is the bounded-memory one.
fn read_binary_body_v2<R: Read>(
    reader: &mut CountingReader<R>,
    header: &TraceHeader,
) -> Result<Workload, TraceError> {
    let frame_len = header.frame_len;
    let mut observed: Vec<Vec<FrameMeta>> = Vec::with_capacity(header.threads.len());
    let mut traces = Vec::with_capacity(header.threads.len());
    for declared in &header.threads {
        let mut accesses =
            Vec::with_capacity(usize::try_from(declared.accesses).unwrap_or(0).min(1 << 20));
        let mut entries = Vec::new();
        let mut remaining = declared.accesses;
        while remaining > 0 {
            let records = remaining.min(frame_len);
            let offset = reader.count();
            let mut hashing = HashingReader::new(reader);
            let mut addr: u64 = 0;
            let mut first_vaddr = 0u64;
            for i in 0..records {
                let a = decode_record(&mut hashing, &mut addr)?;
                if i == 0 {
                    first_vaddr = a.vaddr.raw();
                }
                accesses.push(a);
            }
            let (bytes, checksum) = hashing.finish();
            entries.push(FrameMeta {
                offset,
                bytes,
                records,
                first_vaddr,
                checksum,
            });
            remaining -= records;
        }
        observed.push(entries);
        traces.push(ThreadTrace {
            thread: declared.thread,
            core: declared.core,
            accesses,
        });
    }

    let dir_offset = reader.count();
    let mut hashing = HashingReader::new(reader);
    for (declared, entries) in header.threads.iter().zip(&observed) {
        let frames = read_varint(&mut hashing, "frame count")?;
        if frames != entries.len() as u64 {
            return Err(TraceError::new(format!(
                "directory declares {frames} frame(s) for thread {} but the body holds {}",
                declared.thread.raw(),
                entries.len()
            )));
        }
        for e in entries {
            let bytes = read_varint(&mut hashing, "frame byte length")?;
            let records = read_varint(&mut hashing, "frame record count")?;
            let first_vaddr = read_varint(&mut hashing, "frame first address")?;
            let checksum = u64::from_le_bytes(read_array(&mut hashing, "frame checksum")?);
            if bytes != e.bytes
                || records != e.records
                || first_vaddr != e.first_vaddr
                || checksum != e.checksum
            {
                return Err(TraceError::new(format!(
                    "frame directory disagrees with the body for thread {} — corrupt trace",
                    declared.thread.raw()
                )));
            }
        }
    }
    let (_, dir_checksum) = hashing.finish();
    let declared_offset = u64::from_le_bytes(read_array(reader, "directory offset")?);
    let declared_checksum = u64::from_le_bytes(read_array(reader, "directory checksum")?);
    let tail: [u8; 8] = read_array(reader, "tail magic")?;
    if &tail != V2_TAIL_MAGIC {
        return Err(TraceError::new(
            "missing the v2 tail magic — truncated or corrupt trace",
        ));
    }
    if declared_offset != dir_offset {
        return Err(TraceError::new(format!(
            "trailer points the directory at byte {declared_offset} but it starts at \
             {dir_offset} — corrupt trace"
        )));
    }
    if declared_checksum != dir_checksum {
        return Err(TraceError::new(
            "frame directory checksum mismatch — corrupt trace",
        ));
    }
    let mut trailing = [0u8; 1];
    if reader.read(&mut trailing)? != 0 {
        return Err(TraceError::new(
            "trailing bytes after the v2 trailer — header/body mismatch",
        ));
    }
    Ok(Workload {
        name: header.name.clone(),
        threads: traces,
    })
}

/// 64-bit FNV-1a over a byte slice (frame and directory checksums).
fn fnv1a(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A reader tracking its absolute position, so sequential v2 parsing can
/// verify the directory's byte offsets without seeking.
struct CountingReader<R> {
    inner: R,
    count: u64,
}

impl<R: Read> CountingReader<R> {
    fn with_offset(inner: R, offset: u64) -> Self {
        CountingReader {
            inner,
            count: offset,
        }
    }

    fn count(&self) -> u64 {
        self.count
    }
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.count += n as u64;
        Ok(n)
    }
}

/// A reader that FNV-1a-hashes and counts everything read through it —
/// one frame's (or the directory's) bytes at a time.
struct HashingReader<'a, R> {
    inner: &'a mut R,
    bytes: u64,
    hash: u64,
}

impl<'a, R: Read> HashingReader<'a, R> {
    fn new(inner: &'a mut R) -> Self {
        HashingReader {
            inner,
            bytes: 0,
            hash: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn finish(self) -> (u64, u64) {
        (self.bytes, self.hash)
    }
}

impl<R: Read> Read for HashingReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        for &b in &buf[..n] {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.bytes += n as u64;
        Ok(n)
    }
}

fn read_array<const N: usize>(reader: &mut impl Read, what: &str) -> Result<[u8; N], TraceError> {
    let mut buf = [0u8; N];
    reader
        .read_exact(&mut buf)
        .map_err(|_| TraceError::new(format!("truncated trace: {what} cut short")))?;
    Ok(buf)
}

/// Reads one LEB128 varint that must fit a `u64` (header fields).
fn read_varint(reader: &mut impl Read, what: &str) -> Result<u64, TraceError> {
    let wide = read_varint_wide(reader, what)?;
    u64::try_from(wide).map_err(|_| TraceError::new(format!("{what} overflows 64 bits")))
}

/// Reads one LEB128 varint up to 128 bits (trace records carry a zigzagged
/// 64-bit delta plus a flag bit, which can need 66 bits).
fn read_varint_wide(reader: &mut impl Read, what: &str) -> Result<u128, TraceError> {
    let mut value: u128 = 0;
    let mut shift = 0u32;
    loop {
        let [byte] = read_array::<1>(reader, what)?;
        if shift >= 128 - 7 && (byte >> (128 - shift)) != 0 {
            return Err(TraceError::new(format!("{what} varint overflows 128 bits")));
        }
        value |= u128::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift >= 128 {
            return Err(TraceError::new(format!("{what} varint is too long")));
        }
    }
}

// ---------------------------------------------------------------------------
// Streaming (v2)
// ---------------------------------------------------------------------------

/// One frame's directory entry: where it lives, what it holds, and the
/// FNV-1a checksum of its encoded bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameMeta {
    /// Absolute byte offset of the frame in the file.
    pub offset: u64,
    /// Encoded length in bytes.
    pub bytes: u64,
    /// Records the frame decodes to (`frame_len`, short for the last frame
    /// of a thread).
    pub records: u64,
    /// The first decoded address — directory metadata for `trace_tool
    /// seek`/`info`, verified against the decode on every frame load.
    pub first_vaddr: u64,
    /// FNV-1a of the encoded frame bytes.
    pub checksum: u64,
}

/// An opened v2 trace file: the front header plus the verified frame
/// directory, with the body left on disk. [`TraceSource::open_thread`]
/// hands out [`FrameFeed`]s that decode one frame at a time, so a
/// multi-hundred-million-access trace replays in bounded memory.
///
/// An optional per-thread record `limit` (the `--accesses` override /
/// [`crate::WorkloadSpec::TraceFile`] `limit` field) truncates every
/// thread's stream to a prefix; the effective [`TraceSource::checksum`] is
/// then recomputed over the prefix — frame by frame, never materializing —
/// so a truncated replay still reports a verifiable checksum.
#[derive(Debug)]
pub struct TraceSource {
    path: PathBuf,
    header: TraceHeader,
    frames: Vec<Vec<FrameMeta>>,
    limits: Vec<u64>,
    checksum: u64,
}

impl TraceSource {
    /// Opens a v2 trace for streaming replay: parses the front header,
    /// verifies the trailer and frame directory (offsets, counts,
    /// checksum), and leaves the body untouched.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] for unreadable files, non-v2 formats, and
    /// any structural or checksum inconsistency in the directory.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        Self::open_with_limit(path, 0)
    }

    /// [`TraceSource::open`] with a per-thread record cap (`0` = no cap).
    /// Every thread's stream is truncated to its first `limit` records and
    /// the effective checksum is recomputed over the prefix.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceSource::open`].
    pub fn open_with_limit(path: impl AsRef<Path>, limit: u64) -> Result<Self, TraceError> {
        let path = path.as_ref().to_path_buf();
        let mut file = BufReader::new(std::fs::File::open(&path)?);
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)
            .map_err(|_| TraceError::new("truncated trace: magic cut short"))?;
        if &magic != BINARY_MAGIC {
            return Err(TraceError::new(format!(
                "`{}` is not a binary ALLARM trace — streaming replay needs the \
                 frame-chunked v2 container",
                path.display()
            )));
        }
        let mut counting = CountingReader::with_offset(&mut file, magic.len() as u64);
        let header = read_binary_header(&mut counting)?;
        if header.format != TraceFormat::BinaryV2 {
            return Err(TraceError::new(format!(
                "`{}` is a v1 binary trace; streaming replay needs the frame-chunked v2 \
                 container (re-record with `--format binary-v2` or run `trace_tool convert`)",
                path.display()
            )));
        }
        let body_start = counting.count();

        let file_len = file.get_ref().metadata()?.len();
        if file_len < body_start + V2_TRAILER_BYTES {
            return Err(TraceError::new(
                "truncated trace: no room for the v2 trailer",
            ));
        }
        file.seek(SeekFrom::End(-(V2_TRAILER_BYTES as i64)))?;
        let mut trailer = [0u8; V2_TRAILER_BYTES as usize];
        file.read_exact(&mut trailer)
            .map_err(|_| TraceError::new("truncated trace: trailer cut short"))?;
        let dir_offset = u64::from_le_bytes(trailer[0..8].try_into().expect("8 bytes"));
        let dir_checksum = u64::from_le_bytes(trailer[8..16].try_into().expect("8 bytes"));
        if &trailer[16..24] != V2_TAIL_MAGIC {
            return Err(TraceError::new(
                "missing the v2 tail magic — truncated or corrupt trace",
            ));
        }
        if dir_offset < body_start || dir_offset > file_len - V2_TRAILER_BYTES {
            return Err(TraceError::new(format!(
                "trailer points the frame directory at byte {dir_offset}, outside the \
                 body — corrupt trace"
            )));
        }

        file.seek(SeekFrom::Start(dir_offset))?;
        let mut dirbuf = vec![0u8; (file_len - V2_TRAILER_BYTES - dir_offset) as usize];
        file.read_exact(&mut dirbuf)
            .map_err(|_| TraceError::new("truncated trace: frame directory cut short"))?;
        if fnv1a(&dirbuf) != dir_checksum {
            return Err(TraceError::new(
                "frame directory checksum mismatch — corrupt trace",
            ));
        }

        let mut cursor: &[u8] = &dirbuf;
        let mut offset = body_start;
        let mut frames = Vec::with_capacity(header.threads.len());
        for declared in &header.threads {
            let count = read_varint(&mut cursor, "frame count")?;
            let expected = declared.accesses.div_ceil(header.frame_len);
            if count != expected {
                return Err(TraceError::new(format!(
                    "directory declares {count} frame(s) for thread {} but the header's \
                     {} accesses need {expected}",
                    declared.thread.raw(),
                    declared.accesses
                )));
            }
            let mut entries = Vec::with_capacity(count as usize);
            let mut remaining = declared.accesses;
            for index in 0..count {
                let bytes = read_varint(&mut cursor, "frame byte length")?;
                let records = read_varint(&mut cursor, "frame record count")?;
                let first_vaddr = read_varint(&mut cursor, "frame first address")?;
                let checksum = u64::from_le_bytes(read_array(&mut cursor, "frame checksum")?);
                let expected_records = remaining.min(header.frame_len);
                if records != expected_records {
                    return Err(TraceError::new(format!(
                        "frame {index} of thread {} declares {records} record(s), \
                         expected {expected_records}",
                        declared.thread.raw()
                    )));
                }
                // A record encodes to at most 10 varint bytes, so this cap
                // rejects absurd lengths before any frame is loaded.
                if bytes == 0 || bytes > records.saturating_mul(10) {
                    return Err(TraceError::new(format!(
                        "frame {index} of thread {} declares an impossible byte length \
                         {bytes} for {records} record(s)",
                        declared.thread.raw()
                    )));
                }
                entries.push(FrameMeta {
                    offset,
                    bytes,
                    records,
                    first_vaddr,
                    checksum,
                });
                offset += bytes;
                remaining -= records;
            }
            frames.push(entries);
        }
        if !cursor.is_empty() {
            return Err(TraceError::new(
                "trailing bytes in the frame directory — corrupt trace",
            ));
        }
        if offset != dir_offset {
            return Err(TraceError::new(format!(
                "frame byte lengths end at {offset} but the directory starts at \
                 {dir_offset} — corrupt trace"
            )));
        }

        let limits: Vec<u64> = header
            .threads
            .iter()
            .map(|t| {
                if limit == 0 {
                    t.accesses
                } else {
                    t.accesses.min(limit)
                }
            })
            .collect();
        let truncated = limits
            .iter()
            .zip(&header.threads)
            .any(|(l, t)| *l < t.accesses);
        let mut source = TraceSource {
            path,
            header,
            frames,
            limits,
            checksum: 0,
        };
        source.checksum = if truncated {
            source.prefix_checksum()?
        } else {
            source
                .header
                .checksum
                .expect("binary headers always carry a checksum")
        };
        Ok(source)
    }

    /// The file this source streams from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The parsed front header (full recorded counts, not the truncated
    /// effective ones — see [`TraceSource::threads`]).
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Records per frame.
    pub fn frame_len(&self) -> u64 {
        self.header.frame_len
    }

    /// The recorded workload name.
    pub fn name(&self) -> &str {
        &self.header.name
    }

    /// The effective [`Workload::checksum`]: the header's for a full
    /// replay, recomputed over the prefix when a limit truncates it.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// The effective thread set: recorded identity and pinning with the
    /// per-thread limit applied to the access counts.
    pub fn threads(&self) -> Vec<TraceThread> {
        self.header
            .threads
            .iter()
            .zip(&self.limits)
            .map(|(t, &accesses)| TraceThread {
                thread: t.thread,
                core: t.core,
                accesses,
            })
            .collect()
    }

    /// Total effective references across all threads.
    pub fn total_accesses(&self) -> u64 {
        self.limits.iter().sum()
    }

    /// Minimum machine size able to replay this trace.
    pub fn cores_required(&self) -> usize {
        self.header.cores_required()
    }

    /// True when a record limit truncates at least one thread's stream.
    pub fn is_truncated(&self) -> bool {
        self.limits
            .iter()
            .zip(&self.header.threads)
            .any(|(l, t)| *l < t.accesses)
    }

    /// The verified frame directory of one thread (by header index).
    pub fn frames(&self, thread: usize) -> &[FrameMeta] {
        &self.frames[thread]
    }

    /// Opens an independent streaming cursor over one thread (by header
    /// index), primed at record `start` — each feed owns its own file
    /// handle, so per-shard feeds never contend.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if the file cannot be reopened, `start`
    /// lies beyond the (limited) stream, or the primed frame fails its
    /// checksum.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn open_thread(&self, thread: usize, start: u64) -> Result<FrameFeed<'_>, TraceError> {
        assert!(
            thread < self.header.threads.len(),
            "thread index {thread} out of range"
        );
        let limit = self.limits[thread];
        if start > limit {
            return Err(TraceError::new(format!(
                "cannot open thread {thread} at record {start}: only {limit} record(s) \
                 are replayed"
            )));
        }
        let file = BufReader::new(std::fs::File::open(&self.path)?);
        let mut feed = FrameFeed {
            source: self,
            thread,
            file,
            limit,
            base: 0,
            buf: Vec::new(),
        };
        if start < limit {
            feed.load_frame(start / self.header.frame_len)?;
        }
        Ok(feed)
    }

    /// The truncated-prefix checksum, computed one frame at a time.
    fn prefix_checksum(&self) -> Result<u64, TraceError> {
        let mut stream = ChecksumStream::new();
        for (index, declared) in self.header.threads.iter().enumerate() {
            stream.begin_thread(declared.thread, declared.core, self.limits[index]);
            let mut feed = self.open_thread(index, 0)?;
            for record in 0..self.limits[index] {
                let access = feed
                    .try_get(record as usize)?
                    .expect("record below the limit");
                stream.access(access);
            }
        }
        Ok(stream.finish())
    }
}

/// A streaming cursor over one thread of a [`TraceSource`]: holds exactly
/// one decoded frame, loading (and checksum-verifying) frames on demand as
/// the caller indexes through the stream. Indexing is random-access —
/// frame loads seek — but the simulator only ever walks forward.
#[derive(Debug)]
pub struct FrameFeed<'a> {
    source: &'a TraceSource,
    thread: usize,
    file: BufReader<std::fs::File>,
    limit: u64,
    base: usize,
    buf: Vec<MemAccess>,
}

impl FrameFeed<'_> {
    /// The record at `idx`, or `None` past the (limited) end of the
    /// stream. Mirrors `accesses.get(idx).copied()` on a materialized
    /// thread trace.
    ///
    /// # Panics
    ///
    /// Panics if a frame fails verification mid-replay (the file was
    /// validated at open, so this means on-disk corruption raced the run).
    pub fn get(&mut self, idx: usize) -> Option<MemAccess> {
        match self.try_get(idx) {
            Ok(access) => access,
            Err(e) => panic!(
                "trace `{}` thread {}: {e}",
                self.source.path.display(),
                self.thread
            ),
        }
    }

    /// [`FrameFeed::get`] surfacing frame errors instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] when the frame holding `idx` cannot be
    /// read, fails its checksum, or decodes inconsistently.
    pub fn try_get(&mut self, idx: usize) -> Result<Option<MemAccess>, TraceError> {
        if idx as u64 >= self.limit {
            return Ok(None);
        }
        if idx < self.base || idx >= self.base + self.buf.len() {
            self.load_frame(idx as u64 / self.source.header.frame_len)?;
        }
        Ok(Some(self.buf[idx - self.base]))
    }

    /// Loads and verifies one frame into the buffer.
    fn load_frame(&mut self, frame: u64) -> Result<(), TraceError> {
        let meta = *self.source.frames[self.thread]
            .get(frame as usize)
            .ok_or_else(|| TraceError::new(format!("frame {frame} out of range")))?;
        self.file.seek(SeekFrom::Start(meta.offset))?;
        let mut bytes = vec![0u8; meta.bytes as usize];
        self.file
            .read_exact(&mut bytes)
            .map_err(|_| TraceError::new(format!("frame {frame} cut short")))?;
        if fnv1a(&bytes) != meta.checksum {
            return Err(TraceError::new(format!(
                "frame {frame} failed its checksum — corrupt trace body"
            )));
        }
        let mut cursor: &[u8] = &bytes;
        let mut addr: u64 = 0;
        self.buf.clear();
        self.buf.reserve(meta.records as usize);
        for record in 0..meta.records {
            let access = decode_record(&mut cursor, &mut addr)?;
            if record == 0 && access.vaddr.raw() != meta.first_vaddr {
                return Err(TraceError::new(format!(
                    "frame {frame} decodes to first address {:#x} but the directory \
                     records {:#x}",
                    access.vaddr.raw(),
                    meta.first_vaddr
                )));
            }
            self.buf.push(access);
        }
        if !cursor.is_empty() {
            return Err(TraceError::new(format!(
                "frame {frame} holds trailing bytes past its {} record(s)",
                meta.records
            )));
        }
        self.base =
            usize::try_from(frame * self.source.header.frame_len).expect("record index fits usize");
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Header cache
// ---------------------------------------------------------------------------

/// [`read_header`] through a process-wide memo keyed by `(path, mtime,
/// len)`, so spec accessors asked repeatedly about the same trace (grid
/// expansion, validation, labelling) parse its header once. A rewritten
/// file changes its key and is re-read; errors are never cached.
///
/// # Errors
///
/// Same conditions as [`read_header`].
pub fn read_header_cached(path: impl AsRef<Path>) -> Result<TraceHeader, TraceError> {
    use std::sync::{Mutex, OnceLock};
    use std::time::SystemTime;
    type Key = (PathBuf, SystemTime, u64);
    static CACHE: OnceLock<Mutex<HashMap<Key, TraceHeader>>> = OnceLock::new();

    let path = path.as_ref();
    let meta = std::fs::metadata(path)?;
    let modified = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
    let key = (path.to_path_buf(), modified, meta.len());
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(header) = cache.lock().expect("header cache poisoned").get(&key) {
        return Ok(header.clone());
    }
    let header = read_header(path)?;
    let mut map = cache.lock().expect("header cache poisoned");
    if map.len() >= 256 {
        map.clear();
    }
    map.insert(key, header.clone());
    Ok(header)
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Writes `workload` to `out` in the given format. The header (including
/// the [`Workload::checksum`]) is derived from the workload, so a
/// `write_trace` → [`parse_trace`] round trip reproduces the workload
/// exactly in either format.
///
/// # Errors
///
/// Returns the first I/O error, or `InvalidInput` if two threads share a
/// core (trace records are attributed by core, so the file could not be
/// decoded unambiguously).
pub fn write_trace(
    out: &mut impl Write,
    workload: &Workload,
    format: TraceFormat,
) -> std::io::Result<()> {
    let frame_len = match format {
        TraceFormat::BinaryV2 => DEFAULT_FRAME_LEN,
        _ => 0,
    };
    write_trace_framed(out, workload, format, frame_len)
}

/// [`write_trace`] with an explicit frame length for the v2 container
/// (ignored — and zero — for unframed formats). Exposed so tests and
/// `trace_tool convert --frame-len` can exercise multi-frame layouts on
/// small workloads.
///
/// # Errors
///
/// Same conditions as [`write_trace`], plus `InvalidInput` for a zero
/// frame length with [`TraceFormat::BinaryV2`].
pub fn write_trace_framed(
    out: &mut impl Write,
    workload: &Workload,
    format: TraceFormat,
    frame_len: u64,
) -> std::io::Result<()> {
    let header = TraceHeader {
        format,
        version: match format {
            TraceFormat::BinaryV2 => TRACE_VERSION_V2,
            _ => TRACE_VERSION,
        },
        name: workload.name.clone(),
        threads: workload
            .threads
            .iter()
            .map(|t| TraceThread {
                thread: t.thread,
                core: t.core,
                accesses: t.accesses.len() as u64,
            })
            .collect(),
        checksum: Some(workload.checksum()),
        frame_len,
    };
    header.validate().map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("unwritable workload: {e}"),
        )
    })?;
    match format {
        TraceFormat::Text => write_text(out, workload, &header),
        TraceFormat::Binary => write_binary(out, workload, &header),
        TraceFormat::BinaryV2 => write_binary_v2(out, workload, &header),
    }
}

/// [`write_trace`] to a (created or truncated) file, buffered and flushed.
///
/// # Errors
///
/// Same conditions as [`write_trace`], plus the create itself.
pub fn write_trace_file(
    path: impl AsRef<Path>,
    workload: &Workload,
    format: TraceFormat,
) -> std::io::Result<()> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_trace(&mut out, workload, format)?;
    out.flush()
}

/// [`write_trace_framed`] to a (created or truncated) file.
///
/// # Errors
///
/// Same conditions as [`write_trace_framed`], plus the create itself.
pub fn write_trace_file_framed(
    path: impl AsRef<Path>,
    workload: &Workload,
    format: TraceFormat,
    frame_len: u64,
) -> std::io::Result<()> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_trace_framed(&mut out, workload, format, frame_len)?;
    out.flush()
}

fn write_text(
    out: &mut impl Write,
    workload: &Workload,
    header: &TraceHeader,
) -> std::io::Result<()> {
    writeln!(out, "{TEXT_MAGIC}")?;
    writeln!(out, "name {}", header.name)?;
    for t in &header.threads {
        writeln!(
            out,
            "thread {} core {} accesses {}",
            t.thread.raw(),
            t.core.raw(),
            t.accesses
        )?;
    }
    writeln!(
        out,
        "checksum {:016x}",
        header.checksum.expect("writer always sets it")
    )?;
    for t in &workload.threads {
        let core = t.core.raw();
        for a in &t.accesses {
            writeln!(
                out,
                "{core} {} {:x}",
                if a.write { 'w' } else { 'r' },
                a.vaddr.raw()
            )?;
        }
    }
    Ok(())
}

fn write_binary(
    out: &mut impl Write,
    workload: &Workload,
    header: &TraceHeader,
) -> std::io::Result<()> {
    out.write_all(BINARY_MAGIC)?;
    out.write_all(&TRACE_VERSION.to_le_bytes())?;
    write_varint(out, header.name.len() as u128)?;
    out.write_all(header.name.as_bytes())?;
    write_varint(out, header.threads.len() as u128)?;
    for t in &header.threads {
        write_varint(out, u128::from(t.thread.raw()))?;
        write_varint(out, u128::from(t.core.raw()))?;
        write_varint(out, u128::from(t.accesses))?;
    }
    out.write_all(
        &header
            .checksum
            .expect("writer always sets it")
            .to_le_bytes(),
    )?;
    for t in &workload.threads {
        let mut prev: u64 = 0;
        for a in &t.accesses {
            encode_record(out, *a, &mut prev)?;
        }
    }
    Ok(())
}

/// Encodes one delta/varint record against the running previous address.
fn encode_record(out: &mut impl Write, a: MemAccess, prev: &mut u64) -> std::io::Result<()> {
    let delta = a.vaddr.raw().wrapping_sub(*prev) as i64;
    *prev = a.vaddr.raw();
    let zigzagged = ((delta << 1) ^ (delta >> 63)) as u64;
    let packed = (u128::from(zigzagged) << 1) | u128::from(a.write);
    write_varint(out, packed)
}

/// Writes the frame-chunked v2 container: front header, per-thread frames
/// (each restarting the delta chain), the frame directory, and the fixed
/// trailer. Offsets are tracked by counting, so any `Write` works.
fn write_binary_v2(
    out: &mut impl Write,
    workload: &Workload,
    header: &TraceHeader,
) -> std::io::Result<()> {
    let mut head: Vec<u8> = Vec::new();
    head.extend_from_slice(BINARY_MAGIC);
    head.extend_from_slice(&TRACE_VERSION_V2.to_le_bytes());
    write_varint(&mut head, header.name.len() as u128)?;
    head.extend_from_slice(header.name.as_bytes());
    write_varint(&mut head, header.threads.len() as u128)?;
    for t in &header.threads {
        write_varint(&mut head, u128::from(t.thread.raw()))?;
        write_varint(&mut head, u128::from(t.core.raw()))?;
        write_varint(&mut head, u128::from(t.accesses))?;
    }
    head.extend_from_slice(
        &header
            .checksum
            .expect("writer always sets it")
            .to_le_bytes(),
    );
    write_varint(&mut head, u128::from(header.frame_len))?;
    out.write_all(&head)?;
    let mut offset = head.len() as u64;

    // Body: one buffered frame at a time, collecting the directory.
    let frame_records = usize::try_from(header.frame_len).expect("frame length fits usize");
    let mut directory: Vec<Vec<FrameMeta>> = Vec::with_capacity(workload.threads.len());
    let mut frame: Vec<u8> = Vec::new();
    for t in &workload.threads {
        let mut entries = Vec::new();
        for chunk in t.accesses.chunks(frame_records) {
            frame.clear();
            let mut prev: u64 = 0;
            for a in chunk {
                encode_record(&mut frame, *a, &mut prev)?;
            }
            entries.push(FrameMeta {
                offset,
                bytes: frame.len() as u64,
                records: chunk.len() as u64,
                first_vaddr: chunk[0].vaddr.raw(),
                checksum: fnv1a(&frame),
            });
            out.write_all(&frame)?;
            offset += frame.len() as u64;
        }
        directory.push(entries);
    }

    let mut dirbuf: Vec<u8> = Vec::new();
    for entries in &directory {
        write_varint(&mut dirbuf, entries.len() as u128)?;
        for e in entries {
            write_varint(&mut dirbuf, u128::from(e.bytes))?;
            write_varint(&mut dirbuf, u128::from(e.records))?;
            write_varint(&mut dirbuf, u128::from(e.first_vaddr))?;
            dirbuf.extend_from_slice(&e.checksum.to_le_bytes());
        }
    }
    out.write_all(&dirbuf)?;
    out.write_all(&offset.to_le_bytes())?;
    out.write_all(&fnv1a(&dirbuf).to_le_bytes())?;
    out.write_all(V2_TAIL_MAGIC)?;
    Ok(())
}

fn write_varint(out: &mut impl Write, mut value: u128) -> std::io::Result<()> {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            return out.write_all(&[byte]);
        }
        out.write_all(&[byte | 0x80])?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Benchmark;
    use crate::trace::TraceGenerator;

    fn sample() -> Workload {
        TraceGenerator::new(3, 400, 11).generate(Benchmark::Cholesky)
    }

    fn encode(workload: &Workload, format: TraceFormat) -> Vec<u8> {
        let mut buf = Vec::new();
        write_trace(&mut buf, workload, format).unwrap();
        buf
    }

    #[test]
    fn both_formats_round_trip_exactly() {
        let workload = sample();
        for format in [
            TraceFormat::Text,
            TraceFormat::Binary,
            TraceFormat::BinaryV2,
        ] {
            let buf = encode(&workload, format);
            let (header, decoded) = parse_trace(&buf[..]).unwrap();
            assert_eq!(decoded, workload, "{}", format.name());
            assert_eq!(header.format, format);
            assert_eq!(header.name, workload.name);
            assert_eq!(header.checksum, Some(workload.checksum()));
            assert_eq!(header.total_accesses() as usize, workload.total_accesses());
            assert_eq!(header.cores_required(), workload.cores_required());
        }
    }

    #[test]
    fn binary_is_much_smaller_than_text() {
        let workload = sample();
        let text = encode(&workload, TraceFormat::Text).len();
        let binary = encode(&workload, TraceFormat::Binary).len();
        assert!(
            binary * 3 < text,
            "binary {binary} bytes should be well under a third of text {text}"
        );
    }

    #[test]
    fn hand_written_text_without_checksum_parses() {
        let text = "\
allarm-trace v1 text
# two cores bouncing one line
name pingpong
thread 0 core 0 accesses 2
thread 1 core 3 accesses 1

0 w 1000
3 r 0x1000
0 r 1040
";
        let (header, workload) = parse_trace(text.as_bytes()).unwrap();
        assert_eq!(header.checksum, None);
        assert_eq!(header.cores_required(), 4);
        assert_eq!(workload.name, "pingpong");
        assert_eq!(workload.threads[0].accesses.len(), 2);
        assert_eq!(workload.threads[1].accesses[0].vaddr.raw(), 0x1000);
        assert!(workload.threads[0].accesses[0].write);
        assert!(!workload.threads[0].accesses[1].write);
    }

    #[test]
    fn text_checksum_mismatch_is_detected() {
        let workload = sample();
        let text = String::from_utf8(encode(&workload, TraceFormat::Text)).unwrap();
        let tampered = text.replacen(
            &format!("checksum {:016x}", workload.checksum()),
            &format!("checksum {:016x}", workload.checksum() ^ 1),
            1,
        );
        assert_ne!(tampered, text);
        let err = parse_trace(tampered.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn truncated_text_body_is_detected() {
        let workload = sample();
        let text = String::from_utf8(encode(&workload, TraceFormat::Text)).unwrap();
        let truncated: String =
            text.lines()
                .take(text.lines().count() - 5)
                .fold(String::new(), |mut acc, line| {
                    acc.push_str(line);
                    acc.push('\n');
                    acc
                });
        let err = parse_trace(truncated.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn corrupt_binary_body_fails_the_checksum() {
        let workload = sample();
        let mut buf = encode(&workload, TraceFormat::Binary);
        let last = buf.len() - 1;
        buf[last] ^= 0x01; // flip the final record's write bit
        let err = parse_trace(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn truncated_binary_body_is_detected() {
        let workload = sample();
        let buf = encode(&workload, TraceFormat::Binary);
        let err = parse_trace(&buf[..buf.len() - 3]).unwrap_err();
        assert!(err.to_string().contains("cut short"), "{err}");
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(parse_trace(&b"NOTATRACE"[..]).is_err());
        assert!(parse_trace(&b""[..]).is_err());
        let err = parse_trace(&b"allarm-trace v7 text\nname x\n"[..]).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn unsupported_binary_version_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(BINARY_MAGIC);
        buf.extend_from_slice(&9u16.to_le_bytes());
        let err = parse_trace(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("version 9"), "{err}");
    }

    #[test]
    fn duplicate_core_pinning_is_rejected() {
        let text = "\
allarm-trace v1 text
name bad
thread 0 core 0 accesses 0
thread 1 core 0 accesses 0
";
        let err = parse_trace(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("one core"), "{err}");
        // And the writer refuses to produce such a file.
        let mut workload = sample();
        let shared = workload.threads[0].core;
        workload.threads[1].core = shared;
        let err = write_trace(&mut Vec::new(), &workload, TraceFormat::Text).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn record_for_unknown_core_is_rejected_with_its_line() {
        let text = "\
allarm-trace v1 text
name bad
thread 0 core 0 accesses 1
5 r 40
";
        let err = parse_trace(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 4"), "{err}");
        assert!(err.to_string().contains("core 5"), "{err}");
    }

    #[test]
    fn header_reads_do_not_need_the_body() {
        let workload = sample();
        let dir = std::env::temp_dir().join(format!("allarm-tracefile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for format in [
            TraceFormat::Text,
            TraceFormat::Binary,
            TraceFormat::BinaryV2,
        ] {
            let path = dir.join(format!("h.{}", format.name()));
            write_trace_file(&path, &workload, format).unwrap();
            let header = read_header(&path).unwrap();
            assert_eq!(header.format, format);
            assert_eq!(header.cores_required(), 3);
            assert_eq!(header.checksum, Some(workload.checksum()));
            let (_, decoded) = read_workload(&path).unwrap();
            assert_eq!(decoded, workload);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn format_names_round_trip() {
        for format in [
            TraceFormat::Text,
            TraceFormat::Binary,
            TraceFormat::BinaryV2,
        ] {
            assert_eq!(TraceFormat::from_cli_name(format.name()), Some(format));
        }
        assert_eq!(
            TraceFormat::from_cli_name("BINARY"),
            Some(TraceFormat::Binary)
        );
        assert_eq!(
            TraceFormat::from_cli_name("v2"),
            Some(TraceFormat::BinaryV2)
        );
        assert_eq!(TraceFormat::from_cli_name("gzip"), None);
    }

    /// A reader that yields one byte per `read` call — the worst legal
    /// short-read behaviour (pipes, chained readers).
    struct OneByte<'a>(&'a [u8]);
    impl Read for OneByte<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.0.split_first() {
                Some((&b, rest)) if !buf.is_empty() => {
                    buf[0] = b;
                    self.0 = rest;
                    Ok(1)
                }
                _ => Ok(0),
            }
        }
    }

    #[test]
    fn short_reading_inputs_parse_identically() {
        let workload = sample();
        for format in [
            TraceFormat::Text,
            TraceFormat::Binary,
            TraceFormat::BinaryV2,
        ] {
            let buf = encode(&workload, format);
            let (header, decoded) = parse_trace(OneByte(&buf)).unwrap();
            assert_eq!(decoded, workload, "{}", format.name());
            assert_eq!(header.format, format);
        }
    }

    #[test]
    fn extreme_deltas_survive_the_binary_encoding() {
        let workload = Workload {
            name: "extremes".into(),
            threads: vec![ThreadTrace {
                thread: ThreadId::new(0),
                core: CoreId::new(0),
                accesses: vec![
                    MemAccess::load(u64::MAX),
                    MemAccess::store(0),
                    MemAccess::load(1 << 63),
                    MemAccess::store(u64::MAX - 1),
                ],
            }],
        };
        for format in [TraceFormat::Binary, TraceFormat::BinaryV2] {
            let buf = encode(&workload, format);
            let (_, decoded) = parse_trace(&buf[..]).unwrap();
            assert_eq!(decoded, workload, "{}", format.name());
        }
    }

    /// Writes `workload` as a multi-frame v2 file in a fresh temp dir and
    /// returns `(dir, path)`; callers remove `dir` when done.
    fn v2_file(workload: &Workload, frame_len: u64, tag: &str) -> (std::path::PathBuf, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("allarm-tracefile-v2-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.btrace");
        write_trace_file_framed(&path, workload, TraceFormat::BinaryV2, frame_len).unwrap();
        (dir.clone(), path)
    }

    #[test]
    fn v2_multi_frame_layout_round_trips_and_carries_its_directory() {
        let workload = sample();
        let (dir, path) = v2_file(&workload, 64, "layout");
        let (header, decoded) = read_workload(&path).unwrap();
        assert_eq!(decoded, workload);
        assert_eq!(header.frame_len, 64);

        let source = TraceSource::open(&path).unwrap();
        assert_eq!(source.name(), workload.name);
        assert_eq!(source.checksum(), workload.checksum());
        assert_eq!(source.total_accesses(), workload.total_accesses() as u64);
        for (i, t) in workload.threads.iter().enumerate() {
            let frames = source.frames(i);
            assert_eq!(frames.len(), t.accesses.len().div_ceil(64));
            assert_eq!(
                frames.iter().map(|f| f.records).sum::<u64>(),
                t.accesses.len() as u64
            );
            assert_eq!(frames[0].first_vaddr, t.accesses[0].vaddr.raw());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v2_feed_seeks_into_the_middle_of_any_thread() {
        let workload = sample();
        let (dir, path) = v2_file(&workload, 32, "seek");
        let source = TraceSource::open(&path).unwrap();
        for (i, t) in workload.threads.iter().enumerate() {
            // Seek straight to a mid-trace record without decoding the
            // prefix, then walk across a frame boundary.
            let start = (t.accesses.len() / 2) as u64;
            let mut feed = source.open_thread(i, start).unwrap();
            for idx in start as usize..t.accesses.len() {
                assert_eq!(feed.get(idx), Some(t.accesses[idx]), "thread {i} idx {idx}");
            }
            assert_eq!(feed.get(t.accesses.len()), None);
            // Backward seeks work too (the feed reloads the earlier frame).
            assert_eq!(feed.get(0), Some(t.accesses[0]));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v2_limit_truncates_and_recomputes_the_checksum() {
        let workload = sample();
        let (dir, path) = v2_file(&workload, 64, "limit");
        let limit = 100u64;
        let source = TraceSource::open_with_limit(&path, limit).unwrap();
        assert!(source.is_truncated());

        let mut truncated = workload.clone();
        for t in &mut truncated.threads {
            t.accesses.truncate(limit as usize);
        }
        assert_eq!(source.checksum(), truncated.checksum());
        assert_eq!(source.total_accesses(), truncated.total_accesses() as u64);
        let mut feed = source.open_thread(0, 0).unwrap();
        assert_eq!(
            feed.get(limit as usize - 1),
            Some(workload.threads[0].accesses[99])
        );
        assert_eq!(feed.get(limit as usize), None);

        // A limit at or above every thread's length is a no-op.
        let full = TraceSource::open_with_limit(&path, 1 << 20).unwrap();
        assert!(!full.is_truncated());
        assert_eq!(full.checksum(), workload.checksum());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v2_corrupt_frame_is_caught_by_both_paths() {
        let workload = sample();
        let (dir, path) = v2_file(&workload, 64, "corrupt");
        let source = TraceSource::open(&path).unwrap();
        // Flip a byte in the middle of thread 1's second frame.
        let victim = source.frames(1)[1];
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[(victim.offset + victim.bytes / 2) as usize] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        // The sequential reference decode notices the directory mismatch.
        let err = read_workload(&path).unwrap_err();
        assert!(
            err.to_string().contains("directory disagrees") || err.to_string().contains("record"),
            "{err}"
        );
        // The streaming path opens fine (the directory is intact) but the
        // poisoned frame fails verification on load.
        let source = TraceSource::open(&path).unwrap();
        let mut feed = source.open_thread(1, 0).unwrap();
        assert!(feed.try_get(0).unwrap().is_some(), "frame 0 is untouched");
        let err = feed.try_get(64).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v2_truncated_file_is_rejected() {
        let workload = sample();
        let (dir, path) = v2_file(&workload, 64, "trunc");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(read_workload(&path).is_err());
        let err = TraceSource::open(&path).unwrap_err();
        assert!(err.to_string().contains("tail magic"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_files_refuse_streaming_with_a_helpful_error() {
        let workload = sample();
        let dir = std::env::temp_dir().join(format!("allarm-tracefile-v1s-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        write_trace_file(&path, &workload, TraceFormat::Binary).unwrap();
        let err = TraceSource::open(&path).unwrap_err();
        assert!(err.to_string().contains("v1 binary trace"), "{err}");
        assert!(err.to_string().contains("convert"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cached_header_reads_match_and_track_rewrites() {
        let workload = sample();
        let dir =
            std::env::temp_dir().join(format!("allarm-tracefile-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.btrace");
        write_trace_file(&path, &workload, TraceFormat::Binary).unwrap();
        let first = read_header_cached(&path).unwrap();
        assert_eq!(first, read_header(&path).unwrap());
        assert_eq!(first, read_header_cached(&path).unwrap());
        // Errors are not cached: a missing file stays an error, and a
        // rewritten file (different length) is re-read.
        assert!(read_header_cached(dir.join("missing.trace")).is_err());
        let mut renamed = workload.clone();
        renamed.name = "renamed-longer-name".into();
        write_trace_file(&path, &renamed, TraceFormat::Binary).unwrap();
        assert_eq!(read_header_cached(&path).unwrap().name, renamed.name);
        std::fs::remove_dir_all(&dir).ok();
    }
}

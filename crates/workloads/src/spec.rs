//! Declarative, serializable workload specifications.
//!
//! A [`WorkloadSpec`] is the workload half of a scenario document: it names
//! *what* to run (a benchmark, how many threads or processes, how long a
//! trace) without materializing the trace itself. Specs are plain serde
//! values, so they round-trip through TOML/JSON scenario files, and
//! [`WorkloadSpec::materialize`] turns one into a concrete [`Workload`] as a
//! pure function of `(spec, seed)` — the foundation of the batch runner's
//! determinism guarantee.

use crate::multiprocess::multiprocess_workload;
use crate::profile::Benchmark;
use crate::trace::{TraceGenerator, Workload};
use crate::tracefile::{self, TraceFormat};
use allarm_types::ids::CoreId;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A declarative description of a workload, (de)serializable as part of a
/// scenario document.
///
/// # Examples
///
/// ```
/// use allarm_workloads::{Benchmark, WorkloadSpec};
///
/// let spec = WorkloadSpec::threads(Benchmark::Barnes, 4, 1_000);
/// let workload = spec.materialize(42);
/// assert_eq!(workload.threads.len(), 4);
/// // Materialization is a pure function of (spec, seed):
/// assert_eq!(spec.materialize(42), workload);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// A multi-threaded run of one benchmark: `threads` worker threads
    /// pinned to cores `0..threads`, each issuing `accesses_per_thread`
    /// main-phase references (the setup of Fig. 2 and Fig. 3).
    Threads {
        /// The benchmark whose profile drives trace generation.
        benchmark: Benchmark,
        /// Number of worker threads.
        threads: usize,
        /// Main-phase memory references per thread.
        accesses_per_thread: usize,
    },
    /// Independent single-threaded copies of one benchmark, pinned to the
    /// given cores — the consolidated multi-process setup of Fig. 4.
    Multiprocess {
        /// The benchmark each process runs.
        benchmark: Benchmark,
        /// The core each process is pinned to (one process per entry; the
        /// entries must be distinct).
        cores: Vec<CoreId>,
        /// Main-phase memory references per process.
        accesses_per_process: usize,
    },
    /// A captured (or hand-written) address stream replayed from a trace
    /// file on disk — see [`crate::tracefile`] for the format. The seed is
    /// unused; materialization is a pure function of the file contents,
    /// and the file's checksum is carried into simulation reports so the
    /// determinism story survives external inputs.
    TraceFile {
        /// Path to the trace file. Relative paths are resolved against the
        /// process working directory; `scenario_run` resolves them against
        /// the scenario document's directory first (see
        /// [`WorkloadSpec::resolved_against`]).
        path: String,
        /// The encoding the file is declared to use; validation fails if
        /// the file's magic disagrees.
        format: TraceFormat,
    },
}

impl WorkloadSpec {
    /// Convenience constructor for the multi-threaded form.
    pub fn threads(benchmark: Benchmark, threads: usize, accesses_per_thread: usize) -> Self {
        WorkloadSpec::Threads {
            benchmark,
            threads,
            accesses_per_thread,
        }
    }

    /// Convenience constructor for the multi-process form.
    pub fn multiprocess(
        benchmark: Benchmark,
        cores: Vec<CoreId>,
        accesses_per_process: usize,
    ) -> Self {
        WorkloadSpec::Multiprocess {
            benchmark,
            cores,
            accesses_per_process,
        }
    }

    /// Convenience constructor for the trace-replay form.
    pub fn trace_file(path: impl Into<String>, format: TraceFormat) -> Self {
        WorkloadSpec::TraceFile {
            path: path.into(),
            format,
        }
    }

    /// The benchmark this spec runs, if it is a generated one (trace
    /// replays carry no benchmark identity — use [`WorkloadSpec::label`]
    /// for a human-readable name that always exists).
    pub fn benchmark(&self) -> Option<Benchmark> {
        match self {
            WorkloadSpec::Threads { benchmark, .. }
            | WorkloadSpec::Multiprocess { benchmark, .. } => Some(*benchmark),
            WorkloadSpec::TraceFile { .. } => None,
        }
    }

    /// A short human-readable name for the workload: the benchmark name
    /// for generated specs, the trace header's workload name for replays
    /// (falling back to the file stem when the file is unreadable). Used
    /// by scenario grids to name expansion points.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Threads { benchmark, .. }
            | WorkloadSpec::Multiprocess { benchmark, .. } => benchmark.name().to_string(),
            WorkloadSpec::TraceFile { path, .. } => match tracefile::read_header(path) {
                Ok(header) => header.name,
                Err(_) => Path::new(path)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| path.clone()),
            },
        }
    }

    /// Returns a copy running a different benchmark with the same shape
    /// (used when a scenario grid sweeps the benchmark axis). A no-op for
    /// trace replays, whose content is fixed by the file.
    pub fn with_benchmark(&self, benchmark: Benchmark) -> Self {
        let mut spec = self.clone();
        match &mut spec {
            WorkloadSpec::Threads { benchmark: b, .. }
            | WorkloadSpec::Multiprocess { benchmark: b, .. } => *b = benchmark,
            WorkloadSpec::TraceFile { .. } => {}
        }
        spec
    }

    /// Returns a copy with a different per-thread / per-process trace
    /// length. A no-op for trace replays, whose length is fixed by the
    /// file (callers shortening sweeps for smoke runs leave replays at
    /// full length).
    pub fn with_accesses(&self, accesses: usize) -> Self {
        let mut spec = self.clone();
        match &mut spec {
            WorkloadSpec::Threads {
                accesses_per_thread,
                ..
            } => *accesses_per_thread = accesses,
            WorkloadSpec::Multiprocess {
                accesses_per_process,
                ..
            } => *accesses_per_process = accesses,
            WorkloadSpec::TraceFile { .. } => {}
        }
        spec
    }

    /// Returns a copy with a relative trace path joined onto `base` (specs
    /// without paths, and absolute paths, are returned unchanged). Scenario
    /// loaders call this with the scenario document's directory so a
    /// checked-in document can name its trace relative to itself.
    pub fn resolved_against(&self, base: &Path) -> Self {
        match self {
            WorkloadSpec::TraceFile { path, format } if Path::new(path).is_relative() => {
                WorkloadSpec::TraceFile {
                    path: base.join(path).to_string_lossy().into_owned(),
                    format: *format,
                }
            }
            other => other.clone(),
        }
    }

    /// The per-thread / per-process trace length (for replays: the longest
    /// single thread's stream, `0` when the file is unreadable).
    pub fn accesses(&self) -> usize {
        match self {
            WorkloadSpec::Threads {
                accesses_per_thread,
                ..
            } => *accesses_per_thread,
            WorkloadSpec::Multiprocess {
                accesses_per_process,
                ..
            } => *accesses_per_process,
            WorkloadSpec::TraceFile { path, .. } => tracefile::read_header(path)
                .map(|h| usize::try_from(h.max_thread_accesses()).unwrap_or(usize::MAX))
                .unwrap_or(0),
        }
    }

    /// Total references across all threads this spec materializes to.
    /// Generated specs build the trace (the init phases depend on the
    /// profile); trace replays answer from the header alone, so verifying
    /// a multi-million-access trace's volume never decodes its body.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`] (generated
    /// specs only; an unreadable trace answers `0`, and validation
    /// reports the real error).
    pub fn total_accesses(&self, seed: u64) -> u64 {
        match self {
            WorkloadSpec::TraceFile { path, .. } => tracefile::read_header(path)
                .map(|h| h.total_accesses())
                .unwrap_or(0),
            _ => self.materialize(seed).total_accesses() as u64,
        }
    }

    /// The minimum number of cores a machine needs to run this workload
    /// (for replays: from the trace header, `0` when the file is
    /// unreadable — [`WorkloadSpec::validate`] reports the real error).
    pub fn cores_required(&self) -> usize {
        match self {
            WorkloadSpec::Threads { threads, .. } => *threads,
            WorkloadSpec::Multiprocess { cores, .. } => {
                cores.iter().map(|c| c.index() + 1).max().unwrap_or(0)
            }
            WorkloadSpec::TraceFile { path, .. } => tracefile::read_header(path)
                .map(|h| h.cores_required())
                .unwrap_or(0),
        }
    }

    /// Checks the spec is runnable.
    ///
    /// For trace replays this reads and validates the file's *header*
    /// (existence, magic, declared threads, format agreement) without
    /// decoding the body, so a missing or corrupt trace surfaces here as a
    /// configuration error rather than a panic deep inside a run.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field: zero threads, an
    /// empty or duplicated core list, an unreadable or malformed trace
    /// header, or a trace whose encoding disagrees with the declared
    /// `format`.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            WorkloadSpec::Threads { threads, .. } => {
                if *threads == 0 {
                    return Err("workload.threads: must be non-zero".to_string());
                }
            }
            WorkloadSpec::Multiprocess { cores, .. } => {
                if cores.is_empty() {
                    return Err("workload.cores: must name at least one core".to_string());
                }
                let distinct: std::collections::HashSet<CoreId> = cores.iter().copied().collect();
                if distinct.len() != cores.len() {
                    return Err("workload.cores: process cores must be distinct".to_string());
                }
            }
            WorkloadSpec::TraceFile { path, format } => {
                let header = tracefile::read_header(path)
                    .map_err(|e| format!("workload.path: {path}: {e}"))?;
                if header.format != *format {
                    return Err(format!(
                        "workload.format: {path} is a {} trace but the spec declares {}",
                        header.format.name(),
                        format.name()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Generates the concrete workload: a pure function of `(self, seed)`
    /// — for trace replays, of the file contents (the seed is unused and
    /// the decoded stream is checksum-verified).
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`], or if a trace
    /// file's body is truncated or fails its checksum; callers that take
    /// untrusted specs should validate first (body corruption is only
    /// detectable here, and is reported with the failing path).
    pub fn materialize(&self, seed: u64) -> Workload {
        self.validate()
            .unwrap_or_else(|e| panic!("invalid workload spec: {e}"));
        match self {
            WorkloadSpec::Threads {
                benchmark,
                threads,
                accesses_per_thread,
            } => TraceGenerator::new(*threads, *accesses_per_thread, seed).generate(*benchmark),
            WorkloadSpec::Multiprocess {
                benchmark,
                cores,
                accesses_per_process,
            } => multiprocess_workload(*benchmark, *accesses_per_process, seed, cores),
            WorkloadSpec::TraceFile { path, .. } => {
                let (_, workload) = tracefile::read_workload(path)
                    .unwrap_or_else(|e| panic!("unreadable trace {path}: {e}"));
                workload
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_spec_materializes_deterministically() {
        let spec = WorkloadSpec::threads(Benchmark::Cholesky, 4, 500);
        assert_eq!(spec.benchmark(), Some(Benchmark::Cholesky));
        assert_eq!(spec.label(), "cholesky");
        assert_eq!(spec.cores_required(), 4);
        assert_eq!(spec.accesses(), 500);
        let a = spec.materialize(9);
        let b = spec.materialize(9);
        assert_eq!(a, b);
        assert_eq!(a.name, "cholesky");
        assert_ne!(a, spec.materialize(10));
    }

    #[test]
    fn multiprocess_spec_pins_processes() {
        let spec = WorkloadSpec::multiprocess(
            Benchmark::Barnes,
            vec![CoreId::new(0), CoreId::new(8)],
            300,
        );
        assert_eq!(spec.cores_required(), 9);
        let w = spec.materialize(7);
        assert_eq!(w.threads.len(), 2);
        assert_eq!(w.threads[1].core, CoreId::new(8));
        assert_eq!(w.name, "barnes-2p");
    }

    #[test]
    fn axis_helpers_replace_one_field() {
        let spec = WorkloadSpec::threads(Benchmark::Barnes, 16, 1_000);
        let other = spec.with_benchmark(Benchmark::X264).with_accesses(50);
        assert_eq!(other.benchmark(), Some(Benchmark::X264));
        assert_eq!(other.accesses(), 50);
        assert_eq!(other.cores_required(), 16);
        // The original is untouched.
        assert_eq!(spec.benchmark(), Some(Benchmark::Barnes));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(WorkloadSpec::threads(Benchmark::Barnes, 0, 10)
            .validate()
            .is_err());
        assert!(WorkloadSpec::multiprocess(Benchmark::Barnes, vec![], 10)
            .validate()
            .is_err());
        assert!(WorkloadSpec::multiprocess(
            Benchmark::Barnes,
            vec![CoreId::new(1), CoreId::new(1)],
            10
        )
        .validate()
        .is_err());
    }

    #[test]
    fn spec_serializes_roundtrip() {
        use serde::{Deserialize as _, Serialize as _};
        for spec in [
            WorkloadSpec::threads(Benchmark::Dedup, 16, 250_000),
            WorkloadSpec::multiprocess(
                Benchmark::OceanContiguous,
                vec![CoreId::new(0), CoreId::new(8)],
                60_000,
            ),
            WorkloadSpec::trace_file("captures/run1.trace", TraceFormat::Binary),
        ] {
            let v = spec.to_value();
            assert_eq!(WorkloadSpec::from_value(&v).unwrap(), spec);
        }
    }

    #[test]
    fn trace_file_spec_replays_the_recorded_workload() {
        let dir = std::env::temp_dir().join(format!("allarm-spec-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.trace");
        let recorded = WorkloadSpec::threads(Benchmark::Dedup, 3, 200).materialize(5);
        tracefile::write_trace_file(&path, &recorded, TraceFormat::Text).unwrap();

        let spec = WorkloadSpec::trace_file(path.to_string_lossy(), TraceFormat::Text);
        spec.validate().unwrap();
        assert_eq!(spec.benchmark(), None);
        assert_eq!(spec.label(), "dedup");
        assert_eq!(spec.cores_required(), 3);
        assert_eq!(spec.accesses(), recorded.threads[0].accesses.len());
        // The seed is irrelevant: replay is a pure function of the file.
        assert_eq!(spec.materialize(1), recorded);
        assert_eq!(spec.materialize(99), recorded);
        // Sweep helpers leave replays untouched.
        assert_eq!(spec.with_accesses(7), spec);
        assert_eq!(spec.with_benchmark(Benchmark::Barnes), spec);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_file_validation_reports_missing_and_mismatched_files() {
        let missing = WorkloadSpec::trace_file("/nonexistent/trace.bin", TraceFormat::Binary);
        let err = missing.validate().unwrap_err();
        assert!(err.contains("workload.path"), "{err}");
        assert_eq!(missing.cores_required(), 0);

        let dir = std::env::temp_dir().join(format!("allarm-spec-mismatch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.trace");
        let recorded = WorkloadSpec::threads(Benchmark::Dedup, 2, 50).materialize(5);
        tracefile::write_trace_file(&path, &recorded, TraceFormat::Text).unwrap();
        let wrong = WorkloadSpec::trace_file(path.to_string_lossy(), TraceFormat::Binary);
        let err = wrong.validate().unwrap_err();
        assert!(err.contains("text trace"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn relative_trace_paths_resolve_against_a_base_dir() {
        let spec = WorkloadSpec::trace_file("sample.trace", TraceFormat::Text);
        let resolved = spec.resolved_against(Path::new("/docs/scenarios"));
        assert_eq!(
            resolved,
            WorkloadSpec::trace_file("/docs/scenarios/sample.trace", TraceFormat::Text)
        );
        // Absolute paths and generated specs pass through unchanged.
        let absolute = WorkloadSpec::trace_file("/a/b.trace", TraceFormat::Binary);
        assert_eq!(absolute.resolved_against(Path::new("/docs")), absolute);
        let threads = WorkloadSpec::threads(Benchmark::Barnes, 2, 10);
        assert_eq!(threads.resolved_against(Path::new("/docs")), threads);
    }
}

//! Declarative, serializable workload specifications.
//!
//! A [`WorkloadSpec`] is the workload half of a scenario document: it names
//! *what* to run (a benchmark, how many threads or processes, how long a
//! trace) without materializing the trace itself. Specs are plain serde
//! values, so they round-trip through TOML/JSON scenario files, and
//! [`WorkloadSpec::materialize`] turns one into a concrete [`Workload`] as a
//! pure function of `(spec, seed)` — the foundation of the batch runner's
//! determinism guarantee.

use crate::multiprocess::{consolidation_workload, multiprocess_workload};
use crate::profile::Benchmark;
use crate::trace::{TraceGenerator, Workload};
use crate::tracefile::{self, TraceFormat, TraceSource};
use allarm_types::ids::CoreId;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A declarative description of a workload, (de)serializable as part of a
/// scenario document.
///
/// # Examples
///
/// ```
/// use allarm_workloads::{Benchmark, WorkloadSpec};
///
/// let spec = WorkloadSpec::threads(Benchmark::Barnes, 4, 1_000);
/// let workload = spec.materialize(42);
/// assert_eq!(workload.threads.len(), 4);
/// // Materialization is a pure function of (spec, seed):
/// assert_eq!(spec.materialize(42), workload);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// A multi-threaded run of one benchmark: `threads` worker threads
    /// pinned to cores `0..threads`, each issuing `accesses_per_thread`
    /// main-phase references (the setup of Fig. 2 and Fig. 3).
    Threads {
        /// The benchmark whose profile drives trace generation.
        benchmark: Benchmark,
        /// Number of worker threads.
        threads: usize,
        /// Main-phase memory references per thread.
        accesses_per_thread: usize,
    },
    /// Independent single-threaded copies of one benchmark, pinned to the
    /// given cores — the consolidated multi-process setup of Fig. 4.
    Multiprocess {
        /// The benchmark each process runs.
        benchmark: Benchmark,
        /// The core each process is pinned to (one process per entry; the
        /// entries must be distinct).
        cores: Vec<CoreId>,
        /// Main-phase memory references per process.
        accesses_per_process: usize,
    },
    /// Dozens of independent single-threaded tenant processes packed onto
    /// cores `0..tenants`, cycling through `benchmarks` round-robin — the
    /// datacenter-consolidation generalization of Fig. 4's two-copy setup
    /// (see [`crate::consolidation_workload`]). Tenants share nothing;
    /// their address spaces are disjoint by construction.
    Consolidation {
        /// The benchmark rotation; tenant `i` runs `benchmarks[i % len]`.
        /// May mix batch and serving profiles (e.g. barnes + kv-store).
        benchmarks: Vec<Benchmark>,
        /// Number of single-threaded tenant processes.
        tenants: usize,
        /// Main-phase memory references per tenant.
        accesses_per_tenant: usize,
    },
    /// A captured (or hand-written) address stream replayed from a trace
    /// file on disk — see [`crate::tracefile`] for the format. The seed is
    /// unused; materialization is a pure function of the file contents,
    /// and the file's checksum is carried into simulation reports so the
    /// determinism story survives external inputs.
    TraceFile {
        /// Path to the trace file. Relative paths are resolved against the
        /// process working directory; `scenario_run` resolves them against
        /// the scenario document's directory first (see
        /// [`WorkloadSpec::resolved_against`]).
        path: String,
        /// The encoding the file is declared to use; validation fails if
        /// the file's magic disagrees.
        format: TraceFormat,
        /// Per-thread replay limit in records; `0` (the default) replays
        /// the full trace. Only frame-chunked `binary-v2` traces support
        /// truncation (their frame directory makes the prefix seekable and
        /// its checksum recomputable); validation rejects a non-zero limit
        /// on any other format.
        #[serde(default)]
        limit: u64,
    },
}

impl WorkloadSpec {
    /// Convenience constructor for the multi-threaded form.
    pub fn threads(benchmark: Benchmark, threads: usize, accesses_per_thread: usize) -> Self {
        WorkloadSpec::Threads {
            benchmark,
            threads,
            accesses_per_thread,
        }
    }

    /// Convenience constructor for the multi-process form.
    pub fn multiprocess(
        benchmark: Benchmark,
        cores: Vec<CoreId>,
        accesses_per_process: usize,
    ) -> Self {
        WorkloadSpec::Multiprocess {
            benchmark,
            cores,
            accesses_per_process,
        }
    }

    /// Convenience constructor for the consolidation form.
    pub fn consolidation(
        benchmarks: Vec<Benchmark>,
        tenants: usize,
        accesses_per_tenant: usize,
    ) -> Self {
        WorkloadSpec::Consolidation {
            benchmarks,
            tenants,
            accesses_per_tenant,
        }
    }

    /// Convenience constructor for the trace-replay form.
    pub fn trace_file(path: impl Into<String>, format: TraceFormat) -> Self {
        WorkloadSpec::TraceFile {
            path: path.into(),
            format,
            limit: 0,
        }
    }

    /// The benchmark this spec runs, if it is a generated one (trace
    /// replays carry no benchmark identity — use [`WorkloadSpec::label`]
    /// for a human-readable name that always exists).
    pub fn benchmark(&self) -> Option<Benchmark> {
        match self {
            WorkloadSpec::Threads { benchmark, .. }
            | WorkloadSpec::Multiprocess { benchmark, .. } => Some(*benchmark),
            // A single-entry rotation is one benchmark in all but name; a
            // mixed rotation has no single identity (so e.g. a grid
            // benchmark axis over it collapses rather than mislabeling).
            WorkloadSpec::Consolidation { benchmarks, .. } => match benchmarks.as_slice() {
                [only] => Some(*only),
                _ => None,
            },
            WorkloadSpec::TraceFile { .. } => None,
        }
    }

    /// A short human-readable name for the workload: the benchmark name
    /// for generated specs, the trace header's workload name for replays
    /// (falling back to the file stem when the file is unreadable). Used
    /// by scenario grids to name expansion points.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Threads { benchmark, .. }
            | WorkloadSpec::Multiprocess { benchmark, .. } => benchmark.name().to_string(),
            WorkloadSpec::Consolidation { tenants, .. } => format!("consolidation-{tenants}t"),
            WorkloadSpec::TraceFile { path, .. } => match tracefile::read_header_cached(path) {
                Ok(header) => header.name,
                Err(_) => Path::new(path)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| path.clone()),
            },
        }
    }

    /// Returns a copy running a different benchmark with the same shape
    /// (used when a scenario grid sweeps the benchmark axis). A no-op for
    /// trace replays, whose content is fixed by the file.
    pub fn with_benchmark(&self, benchmark: Benchmark) -> Self {
        let mut spec = self.clone();
        match &mut spec {
            WorkloadSpec::Threads { benchmark: b, .. }
            | WorkloadSpec::Multiprocess { benchmark: b, .. } => *b = benchmark,
            // Every tenant switches to the named benchmark (the rotation
            // collapses — a homogeneous consolidation of it).
            WorkloadSpec::Consolidation { benchmarks, .. } => *benchmarks = vec![benchmark],
            WorkloadSpec::TraceFile { .. } => {}
        }
        spec
    }

    /// Returns a copy with a different per-thread / per-process trace
    /// length. For frame-chunked `binary-v2` replays this sets a real
    /// per-thread truncation limit (the frame directory makes the prefix
    /// seekable and its checksum recomputable); for v1 replays the length
    /// is fixed by the file and the spec is returned **unchanged** — check
    /// [`WorkloadSpec::supports_length_override`] first and warn the user,
    /// or a requested smoke run silently becomes a full replay.
    pub fn with_accesses(&self, accesses: usize) -> Self {
        let mut spec = self.clone();
        match &mut spec {
            WorkloadSpec::Threads {
                accesses_per_thread,
                ..
            } => *accesses_per_thread = accesses,
            WorkloadSpec::Multiprocess {
                accesses_per_process,
                ..
            } => *accesses_per_process = accesses,
            WorkloadSpec::Consolidation {
                accesses_per_tenant,
                ..
            } => *accesses_per_tenant = accesses,
            WorkloadSpec::TraceFile { format, limit, .. } => {
                if *format == TraceFormat::BinaryV2 {
                    *limit = accesses as u64;
                }
            }
        }
        spec
    }

    /// True if [`WorkloadSpec::with_accesses`] actually changes what this
    /// spec replays. False only for v1 trace replays, whose length is
    /// fixed by the file; callers owe the user a loud warning (or a
    /// refusal) before dropping a length override on one.
    pub fn supports_length_override(&self) -> bool {
        match self {
            WorkloadSpec::Threads { .. }
            | WorkloadSpec::Multiprocess { .. }
            | WorkloadSpec::Consolidation { .. } => true,
            WorkloadSpec::TraceFile { format, .. } => *format == TraceFormat::BinaryV2,
        }
    }

    /// Returns a copy with a relative trace path joined onto `base` (specs
    /// without paths, and absolute paths, are returned unchanged). Scenario
    /// loaders call this with the scenario document's directory so a
    /// checked-in document can name its trace relative to itself.
    pub fn resolved_against(&self, base: &Path) -> Self {
        match self {
            WorkloadSpec::TraceFile {
                path,
                format,
                limit,
            } if Path::new(path).is_relative() => WorkloadSpec::TraceFile {
                path: base.join(path).to_string_lossy().into_owned(),
                format: *format,
                limit: *limit,
            },
            other => other.clone(),
        }
    }

    /// The per-thread / per-process trace length (for replays: the longest
    /// single thread's replayed stream, after any truncation limit). Trace
    /// headers are parsed once and cached process-wide, so repeated calls
    /// cost a metadata stat, not a re-parse.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O or format error when a trace file's
    /// header cannot be read — an unreadable trace is an error, not an
    /// empty workload.
    pub fn accesses(&self) -> Result<usize, String> {
        match self {
            WorkloadSpec::Threads {
                accesses_per_thread,
                ..
            } => Ok(*accesses_per_thread),
            WorkloadSpec::Multiprocess {
                accesses_per_process,
                ..
            } => Ok(*accesses_per_process),
            WorkloadSpec::Consolidation {
                accesses_per_tenant,
                ..
            } => Ok(*accesses_per_tenant),
            WorkloadSpec::TraceFile { path, limit, .. } => {
                let header = tracefile::read_header_cached(path)
                    .map_err(|e| format!("workload.path: {path}: {e}"))?;
                let mut longest = header.max_thread_accesses();
                if *limit > 0 {
                    longest = longest.min(*limit);
                }
                Ok(usize::try_from(longest).unwrap_or(usize::MAX))
            }
        }
    }

    /// Total references across all threads this spec materializes to.
    /// Generated specs build the trace (the init phases depend on the
    /// profile); trace replays answer from the (cached) header alone, so
    /// verifying a multi-million-access trace's volume never decodes its
    /// body.
    ///
    /// # Errors
    ///
    /// As [`WorkloadSpec::accesses`].
    ///
    /// # Panics
    ///
    /// Panics if a generated spec fails [`WorkloadSpec::validate`].
    pub fn total_accesses(&self, seed: u64) -> Result<u64, String> {
        match self {
            WorkloadSpec::TraceFile { path, limit, .. } => {
                let header = tracefile::read_header_cached(path)
                    .map_err(|e| format!("workload.path: {path}: {e}"))?;
                Ok(header
                    .threads
                    .iter()
                    .map(|t| {
                        if *limit > 0 {
                            t.accesses.min(*limit)
                        } else {
                            t.accesses
                        }
                    })
                    .sum())
            }
            _ => Ok(self.materialize(seed).total_accesses() as u64),
        }
    }

    /// The minimum number of cores a machine needs to run this workload
    /// (for replays: from the cached trace header).
    ///
    /// # Errors
    ///
    /// As [`WorkloadSpec::accesses`].
    pub fn cores_required(&self) -> Result<usize, String> {
        match self {
            WorkloadSpec::Threads { threads, .. } => Ok(*threads),
            WorkloadSpec::Multiprocess { cores, .. } => {
                Ok(cores.iter().map(|c| c.index() + 1).max().unwrap_or(0))
            }
            WorkloadSpec::Consolidation { tenants, .. } => Ok(*tenants),
            WorkloadSpec::TraceFile { path, .. } => tracefile::read_header_cached(path)
                .map(|h| h.cores_required())
                .map_err(|e| format!("workload.path: {path}: {e}")),
        }
    }

    /// Opens this spec's trace file as a bounded-memory streaming
    /// [`TraceSource`], honoring any truncation limit — `Ok(None)` when
    /// the spec is not a streamable (`binary-v2`) replay and must be
    /// materialized instead.
    ///
    /// # Errors
    ///
    /// Returns the open/validation error for a streamable trace that
    /// cannot be opened (missing file, corrupt directory, bad checksums).
    pub fn streaming_source(&self) -> Result<Option<TraceSource>, String> {
        match self {
            WorkloadSpec::TraceFile {
                path,
                format: TraceFormat::BinaryV2,
                limit,
            } => TraceSource::open_with_limit(path, *limit)
                .map(Some)
                .map_err(|e| format!("workload.path: {path}: {e}")),
            _ => Ok(None),
        }
    }

    /// Checks the spec is runnable.
    ///
    /// For trace replays this reads and validates the file's *header*
    /// (existence, magic, declared threads, format agreement) without
    /// decoding the body, so a missing or corrupt trace surfaces here as a
    /// configuration error rather than a panic deep inside a run.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field: zero threads, an
    /// empty or duplicated core list, an unreadable or malformed trace
    /// header, or a trace whose encoding disagrees with the declared
    /// `format`.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            WorkloadSpec::Threads { threads, .. } => {
                if *threads == 0 {
                    return Err("workload.threads: must be non-zero".to_string());
                }
            }
            WorkloadSpec::Multiprocess { cores, .. } => {
                if cores.is_empty() {
                    return Err("workload.cores: must name at least one core".to_string());
                }
                let distinct: std::collections::HashSet<CoreId> = cores.iter().copied().collect();
                if distinct.len() != cores.len() {
                    return Err("workload.cores: process cores must be distinct".to_string());
                }
            }
            WorkloadSpec::Consolidation {
                benchmarks,
                tenants,
                ..
            } => {
                if benchmarks.is_empty() {
                    return Err("workload.benchmarks: must name at least one benchmark".to_string());
                }
                if *tenants == 0 {
                    return Err("workload.tenants: must be non-zero".to_string());
                }
            }
            WorkloadSpec::TraceFile {
                path,
                format,
                limit,
            } => {
                if *limit > 0 && *format != TraceFormat::BinaryV2 {
                    return Err(format!(
                        "workload.limit: truncation needs a frame-chunked binary-v2 \
                         trace, but the spec declares {}",
                        format.name()
                    ));
                }
                let header = tracefile::read_header_cached(path)
                    .map_err(|e| format!("workload.path: {path}: {e}"))?;
                if header.format != *format {
                    return Err(format!(
                        "workload.format: {path} is a {} trace but the spec declares {}",
                        header.format.name(),
                        format.name()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Generates the concrete workload: a pure function of `(self, seed)`
    /// — for trace replays, of the file contents (the seed is unused and
    /// the decoded stream is checksum-verified).
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`], or if a trace
    /// file's body is truncated or fails its checksum; callers that take
    /// untrusted specs should validate first (body corruption is only
    /// detectable here, and is reported with the failing path).
    pub fn materialize(&self, seed: u64) -> Workload {
        self.validate()
            .unwrap_or_else(|e| panic!("invalid workload spec: {e}"));
        match self {
            WorkloadSpec::Threads {
                benchmark,
                threads,
                accesses_per_thread,
            } => TraceGenerator::new(*threads, *accesses_per_thread, seed).generate(*benchmark),
            WorkloadSpec::Multiprocess {
                benchmark,
                cores,
                accesses_per_process,
            } => multiprocess_workload(*benchmark, *accesses_per_process, seed, cores),
            WorkloadSpec::Consolidation {
                benchmarks,
                tenants,
                accesses_per_tenant,
            } => consolidation_workload(benchmarks, *tenants, *accesses_per_tenant, seed),
            WorkloadSpec::TraceFile { path, limit, .. } => {
                let (_, mut workload) = tracefile::read_workload(path)
                    .unwrap_or_else(|e| panic!("unreadable trace {path}: {e}"));
                if *limit > 0 {
                    let limit = usize::try_from(*limit).unwrap_or(usize::MAX);
                    for thread in &mut workload.threads {
                        thread.accesses.truncate(limit);
                    }
                }
                workload
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_spec_materializes_deterministically() {
        let spec = WorkloadSpec::threads(Benchmark::Cholesky, 4, 500);
        assert_eq!(spec.benchmark(), Some(Benchmark::Cholesky));
        assert_eq!(spec.label(), "cholesky");
        assert_eq!(spec.cores_required().unwrap(), 4);
        assert_eq!(spec.accesses().unwrap(), 500);
        let a = spec.materialize(9);
        let b = spec.materialize(9);
        assert_eq!(a, b);
        assert_eq!(a.name, "cholesky");
        assert_ne!(a, spec.materialize(10));
    }

    #[test]
    fn consolidation_spec_round_trips_and_materializes() {
        let spec = WorkloadSpec::consolidation(vec![Benchmark::Barnes, Benchmark::KvStore], 6, 400);
        spec.validate().unwrap();
        // A mixed rotation has no single benchmark identity; a collapsed
        // one does.
        assert_eq!(spec.benchmark(), None);
        assert_eq!(
            spec.with_benchmark(Benchmark::X264).benchmark(),
            Some(Benchmark::X264)
        );
        assert_eq!(spec.label(), "consolidation-6t");
        assert_eq!(spec.cores_required().unwrap(), 6);
        assert_eq!(spec.accesses().unwrap(), 400);
        assert!(spec.supports_length_override());
        assert_eq!(spec.with_accesses(100).accesses().unwrap(), 100);
        let w = spec.materialize(3);
        assert_eq!(w.threads.len(), 6);
        assert_eq!(w, spec.materialize(3));
        assert_eq!(spec.total_accesses(3).unwrap(), w.total_accesses() as u64);
        // Serde round-trip through TOML, as scenario documents require.
        let text = toml::to_string(&spec).unwrap();
        assert_eq!(toml::from_str::<WorkloadSpec>(&text).unwrap(), spec);

        let empty = WorkloadSpec::consolidation(vec![], 2, 10);
        assert!(empty.validate().unwrap_err().contains("benchmark"));
        let none = WorkloadSpec::consolidation(vec![Benchmark::Barnes], 0, 10);
        assert!(none.validate().unwrap_err().contains("tenants"));
    }

    #[test]
    fn multiprocess_spec_pins_processes() {
        let spec = WorkloadSpec::multiprocess(
            Benchmark::Barnes,
            vec![CoreId::new(0), CoreId::new(8)],
            300,
        );
        assert_eq!(spec.cores_required().unwrap(), 9);
        let w = spec.materialize(7);
        assert_eq!(w.threads.len(), 2);
        assert_eq!(w.threads[1].core, CoreId::new(8));
        assert_eq!(w.name, "barnes-2p");
    }

    #[test]
    fn axis_helpers_replace_one_field() {
        let spec = WorkloadSpec::threads(Benchmark::Barnes, 16, 1_000);
        let other = spec.with_benchmark(Benchmark::X264).with_accesses(50);
        assert_eq!(other.benchmark(), Some(Benchmark::X264));
        assert_eq!(other.accesses().unwrap(), 50);
        assert_eq!(other.cores_required().unwrap(), 16);
        // The original is untouched.
        assert_eq!(spec.benchmark(), Some(Benchmark::Barnes));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(WorkloadSpec::threads(Benchmark::Barnes, 0, 10)
            .validate()
            .is_err());
        assert!(WorkloadSpec::multiprocess(Benchmark::Barnes, vec![], 10)
            .validate()
            .is_err());
        assert!(WorkloadSpec::multiprocess(
            Benchmark::Barnes,
            vec![CoreId::new(1), CoreId::new(1)],
            10
        )
        .validate()
        .is_err());
    }

    #[test]
    fn spec_serializes_roundtrip() {
        use serde::{Deserialize as _, Serialize as _};
        for spec in [
            WorkloadSpec::threads(Benchmark::Dedup, 16, 250_000),
            WorkloadSpec::multiprocess(
                Benchmark::OceanContiguous,
                vec![CoreId::new(0), CoreId::new(8)],
                60_000,
            ),
            WorkloadSpec::trace_file("captures/run1.trace", TraceFormat::Binary),
        ] {
            let v = spec.to_value();
            assert_eq!(WorkloadSpec::from_value(&v).unwrap(), spec);
        }
    }

    #[test]
    fn trace_file_spec_replays_the_recorded_workload() {
        let dir = std::env::temp_dir().join(format!("allarm-spec-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.trace");
        let recorded = WorkloadSpec::threads(Benchmark::Dedup, 3, 200).materialize(5);
        tracefile::write_trace_file(&path, &recorded, TraceFormat::Text).unwrap();

        let spec = WorkloadSpec::trace_file(path.to_string_lossy(), TraceFormat::Text);
        spec.validate().unwrap();
        assert_eq!(spec.benchmark(), None);
        assert_eq!(spec.label(), "dedup");
        assert_eq!(spec.cores_required().unwrap(), 3);
        assert_eq!(spec.accesses().unwrap(), recorded.threads[0].accesses.len());
        // The seed is irrelevant: replay is a pure function of the file.
        assert_eq!(spec.materialize(1), recorded);
        assert_eq!(spec.materialize(99), recorded);
        // Sweep helpers leave replays untouched.
        assert_eq!(spec.with_accesses(7), spec);
        assert_eq!(spec.with_benchmark(Benchmark::Barnes), spec);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_file_validation_reports_missing_and_mismatched_files() {
        let missing = WorkloadSpec::trace_file("/nonexistent/trace.bin", TraceFormat::Binary);
        let err = missing.validate().unwrap_err();
        assert!(err.contains("workload.path"), "{err}");
        // An unreadable trace is an error, not an empty workload.
        assert!(missing.cores_required().is_err());
        assert!(missing.accesses().is_err());
        assert!(missing.total_accesses(0).is_err());

        let dir = std::env::temp_dir().join(format!("allarm-spec-mismatch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.trace");
        let recorded = WorkloadSpec::threads(Benchmark::Dedup, 2, 50).materialize(5);
        tracefile::write_trace_file(&path, &recorded, TraceFormat::Text).unwrap();
        let wrong = WorkloadSpec::trace_file(path.to_string_lossy(), TraceFormat::Binary);
        let err = wrong.validate().unwrap_err();
        assert!(err.contains("text trace"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v2_replays_support_real_truncation_and_streaming() {
        let dir = std::env::temp_dir().join(format!("allarm-spec-v2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.btrace");
        let recorded = WorkloadSpec::threads(Benchmark::Dedup, 2, 200).materialize(5);
        tracefile::write_trace_file_framed(&path, &recorded, TraceFormat::BinaryV2, 64).unwrap();

        let spec = WorkloadSpec::trace_file(path.to_string_lossy(), TraceFormat::BinaryV2);
        spec.validate().unwrap();
        assert!(spec.supports_length_override());
        // with_accesses is a *real* truncation on v2, not a silent no-op.
        let short = spec.with_accesses(40);
        assert_ne!(short, spec);
        short.validate().unwrap();
        assert_eq!(short.accesses().unwrap(), 40);
        assert_eq!(short.total_accesses(0).unwrap(), 80);
        let materialized = short.materialize(0);
        assert!(materialized.threads.iter().all(|t| t.accesses.len() == 40));
        // The streaming source replays the identical truncated stream.
        let source = short.streaming_source().unwrap().unwrap();
        assert_eq!(source.checksum(), materialized.checksum());
        assert_eq!(source.total_accesses(), 80);

        // v1 replays cannot stream, do not support overrides, and reject
        // a hand-written limit outright.
        let v1_path = dir.join("sample.trace");
        tracefile::write_trace_file(&v1_path, &recorded, TraceFormat::Text).unwrap();
        let v1 = WorkloadSpec::trace_file(v1_path.to_string_lossy(), TraceFormat::Text);
        assert!(!v1.supports_length_override());
        assert_eq!(v1.with_accesses(40), v1);
        assert!(v1.streaming_source().unwrap().is_none());
        let bad = WorkloadSpec::TraceFile {
            path: v1_path.to_string_lossy().into_owned(),
            format: TraceFormat::Text,
            limit: 5,
        };
        let err = bad.validate().unwrap_err();
        assert!(err.contains("binary-v2"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn relative_trace_paths_resolve_against_a_base_dir() {
        let spec = WorkloadSpec::trace_file("sample.trace", TraceFormat::Text);
        let resolved = spec.resolved_against(Path::new("/docs/scenarios"));
        assert_eq!(
            resolved,
            WorkloadSpec::trace_file("/docs/scenarios/sample.trace", TraceFormat::Text)
        );
        // Absolute paths and generated specs pass through unchanged.
        let absolute = WorkloadSpec::trace_file("/a/b.trace", TraceFormat::Binary);
        assert_eq!(absolute.resolved_against(Path::new("/docs")), absolute);
        let threads = WorkloadSpec::threads(Benchmark::Barnes, 2, 10);
        assert_eq!(threads.resolved_against(Path::new("/docs")), threads);
    }
}

//! Declarative, serializable workload specifications.
//!
//! A [`WorkloadSpec`] is the workload half of a scenario document: it names
//! *what* to run (a benchmark, how many threads or processes, how long a
//! trace) without materializing the trace itself. Specs are plain serde
//! values, so they round-trip through TOML/JSON scenario files, and
//! [`WorkloadSpec::materialize`] turns one into a concrete [`Workload`] as a
//! pure function of `(spec, seed)` — the foundation of the batch runner's
//! determinism guarantee.

use crate::multiprocess::multiprocess_workload;
use crate::profile::Benchmark;
use crate::trace::{TraceGenerator, Workload};
use allarm_types::ids::CoreId;
use serde::{Deserialize, Serialize};

/// A declarative description of a workload, (de)serializable as part of a
/// scenario document.
///
/// # Examples
///
/// ```
/// use allarm_workloads::{Benchmark, WorkloadSpec};
///
/// let spec = WorkloadSpec::threads(Benchmark::Barnes, 4, 1_000);
/// let workload = spec.materialize(42);
/// assert_eq!(workload.threads.len(), 4);
/// // Materialization is a pure function of (spec, seed):
/// assert_eq!(spec.materialize(42), workload);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// A multi-threaded run of one benchmark: `threads` worker threads
    /// pinned to cores `0..threads`, each issuing `accesses_per_thread`
    /// main-phase references (the setup of Fig. 2 and Fig. 3).
    Threads {
        /// The benchmark whose profile drives trace generation.
        benchmark: Benchmark,
        /// Number of worker threads.
        threads: usize,
        /// Main-phase memory references per thread.
        accesses_per_thread: usize,
    },
    /// Independent single-threaded copies of one benchmark, pinned to the
    /// given cores — the consolidated multi-process setup of Fig. 4.
    Multiprocess {
        /// The benchmark each process runs.
        benchmark: Benchmark,
        /// The core each process is pinned to (one process per entry; the
        /// entries must be distinct).
        cores: Vec<CoreId>,
        /// Main-phase memory references per process.
        accesses_per_process: usize,
    },
}

impl WorkloadSpec {
    /// Convenience constructor for the multi-threaded form.
    pub fn threads(benchmark: Benchmark, threads: usize, accesses_per_thread: usize) -> Self {
        WorkloadSpec::Threads {
            benchmark,
            threads,
            accesses_per_thread,
        }
    }

    /// Convenience constructor for the multi-process form.
    pub fn multiprocess(
        benchmark: Benchmark,
        cores: Vec<CoreId>,
        accesses_per_process: usize,
    ) -> Self {
        WorkloadSpec::Multiprocess {
            benchmark,
            cores,
            accesses_per_process,
        }
    }

    /// The benchmark this spec runs.
    pub fn benchmark(&self) -> Benchmark {
        match self {
            WorkloadSpec::Threads { benchmark, .. }
            | WorkloadSpec::Multiprocess { benchmark, .. } => *benchmark,
        }
    }

    /// Returns a copy running a different benchmark with the same shape
    /// (used when a scenario grid sweeps the benchmark axis).
    pub fn with_benchmark(&self, benchmark: Benchmark) -> Self {
        let mut spec = self.clone();
        match &mut spec {
            WorkloadSpec::Threads { benchmark: b, .. }
            | WorkloadSpec::Multiprocess { benchmark: b, .. } => *b = benchmark,
        }
        spec
    }

    /// Returns a copy with a different per-thread / per-process trace
    /// length.
    pub fn with_accesses(&self, accesses: usize) -> Self {
        let mut spec = self.clone();
        match &mut spec {
            WorkloadSpec::Threads {
                accesses_per_thread,
                ..
            } => *accesses_per_thread = accesses,
            WorkloadSpec::Multiprocess {
                accesses_per_process,
                ..
            } => *accesses_per_process = accesses,
        }
        spec
    }

    /// The per-thread / per-process trace length.
    pub fn accesses(&self) -> usize {
        match self {
            WorkloadSpec::Threads {
                accesses_per_thread,
                ..
            } => *accesses_per_thread,
            WorkloadSpec::Multiprocess {
                accesses_per_process,
                ..
            } => *accesses_per_process,
        }
    }

    /// The minimum number of cores a machine needs to run this workload.
    pub fn cores_required(&self) -> usize {
        match self {
            WorkloadSpec::Threads { threads, .. } => *threads,
            WorkloadSpec::Multiprocess { cores, .. } => {
                cores.iter().map(|c| c.index() + 1).max().unwrap_or(0)
            }
        }
    }

    /// Checks the spec is runnable.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field: zero threads, an
    /// empty or duplicated core list.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            WorkloadSpec::Threads { threads, .. } => {
                if *threads == 0 {
                    return Err("workload.threads: must be non-zero".to_string());
                }
            }
            WorkloadSpec::Multiprocess { cores, .. } => {
                if cores.is_empty() {
                    return Err("workload.cores: must name at least one core".to_string());
                }
                let distinct: std::collections::HashSet<CoreId> = cores.iter().copied().collect();
                if distinct.len() != cores.len() {
                    return Err("workload.cores: process cores must be distinct".to_string());
                }
            }
        }
        Ok(())
    }

    /// Generates the concrete workload: a pure function of `(self, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`]; callers that
    /// take untrusted specs should validate first.
    pub fn materialize(&self, seed: u64) -> Workload {
        self.validate()
            .unwrap_or_else(|e| panic!("invalid workload spec: {e}"));
        match self {
            WorkloadSpec::Threads {
                benchmark,
                threads,
                accesses_per_thread,
            } => TraceGenerator::new(*threads, *accesses_per_thread, seed).generate(*benchmark),
            WorkloadSpec::Multiprocess {
                benchmark,
                cores,
                accesses_per_process,
            } => multiprocess_workload(*benchmark, *accesses_per_process, seed, cores),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_spec_materializes_deterministically() {
        let spec = WorkloadSpec::threads(Benchmark::Cholesky, 4, 500);
        assert_eq!(spec.benchmark(), Benchmark::Cholesky);
        assert_eq!(spec.cores_required(), 4);
        assert_eq!(spec.accesses(), 500);
        let a = spec.materialize(9);
        let b = spec.materialize(9);
        assert_eq!(a, b);
        assert_eq!(a.name, "cholesky");
        assert_ne!(a, spec.materialize(10));
    }

    #[test]
    fn multiprocess_spec_pins_processes() {
        let spec = WorkloadSpec::multiprocess(
            Benchmark::Barnes,
            vec![CoreId::new(0), CoreId::new(8)],
            300,
        );
        assert_eq!(spec.cores_required(), 9);
        let w = spec.materialize(7);
        assert_eq!(w.threads.len(), 2);
        assert_eq!(w.threads[1].core, CoreId::new(8));
        assert_eq!(w.name, "barnes-2p");
    }

    #[test]
    fn axis_helpers_replace_one_field() {
        let spec = WorkloadSpec::threads(Benchmark::Barnes, 16, 1_000);
        let other = spec.with_benchmark(Benchmark::X264).with_accesses(50);
        assert_eq!(other.benchmark(), Benchmark::X264);
        assert_eq!(other.accesses(), 50);
        assert_eq!(other.cores_required(), 16);
        // The original is untouched.
        assert_eq!(spec.benchmark(), Benchmark::Barnes);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(WorkloadSpec::threads(Benchmark::Barnes, 0, 10)
            .validate()
            .is_err());
        assert!(WorkloadSpec::multiprocess(Benchmark::Barnes, vec![], 10)
            .validate()
            .is_err());
        assert!(WorkloadSpec::multiprocess(
            Benchmark::Barnes,
            vec![CoreId::new(1), CoreId::new(1)],
            10
        )
        .validate()
        .is_err());
    }

    #[test]
    fn spec_serializes_roundtrip() {
        use serde::{Deserialize as _, Serialize as _};
        for spec in [
            WorkloadSpec::threads(Benchmark::Dedup, 16, 250_000),
            WorkloadSpec::multiprocess(
                Benchmark::OceanContiguous,
                vec![CoreId::new(0), CoreId::new(8)],
                60_000,
            ),
        ] {
            let v = spec.to_value();
            assert_eq!(WorkloadSpec::from_value(&v).unwrap(), spec);
        }
    }
}

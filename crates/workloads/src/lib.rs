//! Synthetic SPLASH2/PARSEC-like workloads for the ALLARM evaluation.
//!
//! The paper evaluates ALLARM on eight SPLASH2 and PARSEC benchmarks running
//! on a full-system GEM5 simulation. Neither the benchmark binaries nor a
//! full-system simulator are available here, so this crate substitutes
//! **workload profiles**: for each benchmark, a parametric description of
//! the memory behaviour the paper's analysis actually appeals to —
//!
//! * per-thread private data, split into a *hot* reused set and a *streamed*
//!   set (the source of baseline probe-filter churn);
//! * globally shared data, likewise split into hot and streamed regions;
//! * the fraction of accesses that target shared data (which, combined with
//!   first-touch placement, determines the local/remote request mix of
//!   Fig. 2);
//! * the write fraction and whether shared data is initialised by thread 0
//!   (the producer/consumer pattern that makes `blackscholes` sensitive to
//!   probe-filter capacity in Fig. 3h).
//!
//! [`TraceGenerator`] turns a profile into per-thread memory-access traces
//! that the simulator in `allarm-core` replays; [`multiprocess`] builds the
//! two-copies-of-one-thread setup of the paper's multi-process experiment
//! (Fig. 4).
//!
//! # Examples
//!
//! ```
//! use allarm_workloads::{Benchmark, TraceGenerator};
//!
//! let gen = TraceGenerator::new(16, 2_000, 42);
//! let workload = gen.generate(Benchmark::OceanContiguous);
//! assert_eq!(workload.threads.len(), 16);
//! assert!(workload.threads.iter().all(|t| !t.accesses.is_empty()));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod multiprocess;
pub mod profile;
pub mod source;
pub mod spec;
pub mod trace;
pub mod tracefile;

pub use multiprocess::{consolidation_workload, multiprocess_workload};
pub use profile::{Benchmark, BenchmarkProfile};
pub use source::{AccessSource, SourceThread, ThreadFeed};
pub use spec::WorkloadSpec;
pub use trace::{ChecksumStream, MemAccess, ThreadTrace, TraceGenerator, Workload};
pub use tracefile::{FrameFeed, FrameMeta, TraceFormat, TraceHeader, TraceSource};

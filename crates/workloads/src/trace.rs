//! Memory-access trace generation from benchmark profiles.

use crate::profile::{Benchmark, BenchmarkProfile};
use allarm_types::addr::{VirtAddr, PAGE_BYTES};
use allarm_types::ids::{CoreId, ThreadId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Byte distance between consecutive accesses in a streaming region; four
/// accesses touch a 64-byte line before moving on, modelling the spatial
/// locality of array traversals.
const STREAM_STRIDE_BYTES: u64 = 16;

/// Base virtual address of thread `t`'s private region (each thread gets a
/// 4 GiB window, far larger than any profile's footprint).
fn private_base(thread: usize) -> u64 {
    (thread as u64 + 1) << 32
}

/// Offset of the private streaming region within a thread's window.
const PRIVATE_STREAM_OFFSET: u64 = 1 << 30;

/// Offset of the private write-once initialisation region within a thread's
/// window.
const PRIVATE_INIT_OFFSET: u64 = 1 << 31;

/// Base virtual address of the process-wide shared region.
const SHARED_BASE: u64 = 0x7000_0000_0000;

/// Offset of the shared streaming region within the shared window.
const SHARED_STREAM_OFFSET: u64 = 1 << 34;

/// A single memory reference in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// The virtual address referenced.
    pub vaddr: VirtAddr,
    /// True for a store, false for a load.
    pub write: bool,
}

impl MemAccess {
    /// Creates a load access.
    pub fn load(vaddr: u64) -> Self {
        MemAccess {
            vaddr: VirtAddr::new(vaddr),
            write: false,
        }
    }

    /// Creates a store access.
    pub fn store(vaddr: u64) -> Self {
        MemAccess {
            vaddr: VirtAddr::new(vaddr),
            write: true,
        }
    }
}

/// The access trace of one software thread, plus the core it is pinned to by
/// the workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadTrace {
    /// The thread's identity.
    pub thread: ThreadId,
    /// The core this thread runs on for the whole simulation. (The paper
    /// does not pin threads, but its scheduler keeps them in place in the
    /// common case; a fixed placement keeps the model deterministic.)
    pub core: CoreId,
    /// The ordered sequence of memory references the thread issues.
    pub accesses: Vec<MemAccess>,
}

/// A complete multi-threaded (or multi-process) workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Human-readable name (benchmark name, possibly with a suffix).
    pub name: String,
    /// Per-thread traces.
    pub threads: Vec<ThreadTrace>,
}

impl Workload {
    /// Total number of memory references across all threads.
    pub fn total_accesses(&self) -> usize {
        self.threads.iter().map(|t| t.accesses.len()).sum()
    }

    /// A 64-bit FNV-1a checksum of the workload's replayable content: per
    /// thread, the thread id, pinned core, access count, and every
    /// `(address, write)` reference in order. The name is *not* hashed —
    /// the checksum identifies the reference stream, not its label.
    ///
    /// This is the checksum recorded in trace-file headers
    /// ([`crate::tracefile`]) and surfaced as `workload_checksum` in
    /// simulation reports, so a replayed trace is verifiable end to end.
    pub fn checksum(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        for t in &self.threads {
            eat(&t.thread.raw().to_le_bytes());
            eat(&t.core.raw().to_le_bytes());
            eat(&(t.accesses.len() as u64).to_le_bytes());
            for a in &t.accesses {
                eat(&a.vaddr.raw().to_le_bytes());
                eat(&[u8::from(a.write)]);
            }
        }
        hash
    }

    /// The highest core index used by the workload plus one (the minimum
    /// machine size able to run it).
    pub fn cores_required(&self) -> usize {
        self.threads
            .iter()
            .map(|t| t.core.index() + 1)
            .max()
            .unwrap_or(0)
    }
}

/// Generates per-thread traces from a [`BenchmarkProfile`].
///
/// # Examples
///
/// ```
/// use allarm_workloads::{Benchmark, TraceGenerator};
///
/// let gen = TraceGenerator::new(4, 1_000, 7);
/// let workload = gen.generate(Benchmark::Barnes);
/// assert_eq!(workload.threads.len(), 4);
/// assert_eq!(workload.name, "barnes");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TraceGenerator {
    num_threads: usize,
    accesses_per_thread: usize,
    seed: u64,
}

impl TraceGenerator {
    /// Creates a generator for `num_threads` threads, each issuing
    /// `accesses_per_thread` references in its main phase, using `seed` for
    /// all randomness.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero.
    pub fn new(num_threads: usize, accesses_per_thread: usize, seed: u64) -> Self {
        assert!(num_threads > 0, "a workload needs at least one thread");
        TraceGenerator {
            num_threads,
            accesses_per_thread,
            seed,
        }
    }

    /// Number of threads the generator produces.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Main-phase accesses per thread.
    pub fn accesses_per_thread(&self) -> usize {
        self.accesses_per_thread
    }

    /// Generates the workload for a named benchmark.
    pub fn generate(&self, benchmark: Benchmark) -> Workload {
        self.generate_profile(benchmark.name(), &benchmark.profile())
    }

    /// Generates a workload from an arbitrary profile (used by sensitivity
    /// experiments and tests).
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation.
    pub fn generate_profile(&self, name: &str, profile: &BenchmarkProfile) -> Workload {
        profile
            .validate()
            .unwrap_or_else(|e| panic!("invalid profile for {name}: {e}"));
        let threads = (0..self.num_threads)
            .map(|t| self.generate_thread(t, profile))
            .collect();
        Workload {
            name: name.to_string(),
            threads,
        }
    }

    /// The initialisation accesses for thread `t`: one store to every shared
    /// page this thread is responsible for first-touching. Under the
    /// first-touch policy these stores determine where shared pages are
    /// homed — on node 0 for the producer/consumer profiles, spread across
    /// all nodes otherwise.
    fn init_phase(&self, thread: usize, profile: &BenchmarkProfile) -> Vec<MemAccess> {
        let shared_bytes = profile.shared_footprint_kb() * 1024;
        let shared_pages = shared_bytes.div_ceil(PAGE_BYTES);
        let mut accesses = Vec::new();
        for page in 0..shared_pages {
            let owner = if profile.shared_init_by_thread0 {
                0
            } else {
                (page as usize) % self.num_threads
            };
            if owner == thread {
                let addr = self.shared_page_addr(page, profile);
                accesses.push(MemAccess::store(addr));
            }
        }
        accesses
    }

    /// Byte address of the start of the `page`-th page of the shared
    /// footprint (hot pages first, then streaming pages).
    fn shared_page_addr(&self, page: u64, profile: &BenchmarkProfile) -> u64 {
        let hot_pages = (profile.shared_hot_kb * 1024).div_ceil(PAGE_BYTES);
        if page < hot_pages {
            SHARED_BASE + page * PAGE_BYTES
        } else {
            SHARED_BASE + SHARED_STREAM_OFFSET + (page - hot_pages) * PAGE_BYTES
        }
    }

    fn generate_thread(&self, thread: usize, profile: &BenchmarkProfile) -> ThreadTrace {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(thread as u64),
        );

        let priv_hot_bytes = profile.private_hot_kb * 1024;
        let priv_stream_bytes = profile.private_stream_kb * 1024;
        let shared_hot_bytes = profile.shared_hot_kb * 1024;
        let shared_stream_bytes = profile.shared_stream_kb * 1024;

        let priv_base = private_base(thread);
        let priv_stream_base = priv_base + PRIVATE_STREAM_OFFSET;
        let shared_hot_base = SHARED_BASE;
        let shared_stream_base = SHARED_BASE + SHARED_STREAM_OFFSET;

        // Streaming cursors start at a per-thread offset so the threads do
        // not march through shared data in lockstep.
        let mut priv_stream_pos: u64 = 0;
        let mut shared_stream_pos: u64 = if shared_stream_bytes > 0 {
            (thread as u64 * shared_stream_bytes / self.num_threads as u64) / STREAM_STRIDE_BYTES
                * STREAM_STRIDE_BYTES
        } else {
            0
        };

        let mut accesses = self.init_phase(thread, profile);

        // Private initialisation pass: one load per cache line of the
        // touch-once region (each thread scanning its slice of the input
        // data set, building its private structures). Under first-touch
        // these lines are homed locally; in the baseline each one allocates
        // a probe-filter entry that sits stale after the clean line is
        // silently dropped from the cache — exactly the thread-local waste
        // ALLARM eliminates.
        let init_lines = (profile.private_init_kb * 1024) / allarm_types::addr::LINE_BYTES;
        let private_init_base = priv_base + PRIVATE_INIT_OFFSET;
        for line in 0..init_lines {
            accesses.push(MemAccess::load(
                private_init_base + line * allarm_types::addr::LINE_BYTES,
            ));
        }

        accesses.reserve(self.accesses_per_thread);

        for _ in 0..self.accesses_per_thread {
            let shared = rng.gen_bool(profile.shared_fraction);
            let write_fraction = if shared {
                profile.shared_write_fraction
            } else {
                profile.write_fraction
            };
            let vaddr = if shared {
                if shared_stream_bytes > 0 && rng.gen_bool(profile.shared_stream_fraction) {
                    let addr = shared_stream_base + shared_stream_pos;
                    shared_stream_pos =
                        (shared_stream_pos + STREAM_STRIDE_BYTES) % shared_stream_bytes;
                    addr
                } else if shared_hot_bytes > 0 {
                    shared_hot_base + align_down(rng.gen_range(0..shared_hot_bytes))
                } else {
                    shared_stream_base
                }
            } else if priv_stream_bytes > 0 && rng.gen_bool(profile.private_stream_fraction) {
                let addr = priv_stream_base + priv_stream_pos;
                priv_stream_pos = (priv_stream_pos + STREAM_STRIDE_BYTES) % priv_stream_bytes;
                addr
            } else if priv_hot_bytes > 0 {
                priv_base + align_down(rng.gen_range(0..priv_hot_bytes))
            } else {
                priv_stream_base
            };
            let write = rng.gen_bool(write_fraction);
            accesses.push(MemAccess {
                vaddr: VirtAddr::new(vaddr),
                write,
            });
        }

        ThreadTrace {
            thread: ThreadId::new(thread as u16),
            core: CoreId::new(thread as u16),
            accesses,
        }
    }
}

fn align_down(addr: u64) -> u64 {
    addr / STREAM_STRIDE_BYTES * STREAM_STRIDE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn quick(bench: Benchmark) -> Workload {
        TraceGenerator::new(4, 2_000, 123).generate(bench)
    }

    #[test]
    fn generates_one_trace_per_thread_on_distinct_cores() {
        let w = quick(Benchmark::Barnes);
        assert_eq!(w.threads.len(), 4);
        let cores: HashSet<CoreId> = w.threads.iter().map(|t| t.core).collect();
        assert_eq!(cores.len(), 4);
        assert_eq!(w.cores_required(), 4);
        assert!(w.total_accesses() >= 4 * 2_000);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = TraceGenerator::new(4, 500, 9).generate(Benchmark::Cholesky);
        let b = TraceGenerator::new(4, 500, 9).generate(Benchmark::Cholesky);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceGenerator::new(2, 500, 1).generate(Benchmark::Cholesky);
        let b = TraceGenerator::new(2, 500, 2).generate(Benchmark::Cholesky);
        assert_ne!(a, b);
    }

    #[test]
    fn private_addresses_are_disjoint_between_threads() {
        let w = quick(Benchmark::OceanContiguous);
        // Any address below SHARED_BASE belongs to exactly one thread's
        // 4 GiB window.
        for t in &w.threads {
            for a in &t.accesses {
                let addr = a.vaddr.raw();
                if addr < SHARED_BASE {
                    let window = addr >> 32;
                    assert_eq!(window, t.thread.index() as u64 + 1);
                }
            }
        }
    }

    #[test]
    fn shared_accesses_exist_and_are_in_shared_window() {
        let w = quick(Benchmark::Blackscholes);
        let shared_count: usize = w
            .threads
            .iter()
            .map(|t| {
                t.accesses
                    .iter()
                    .filter(|a| a.vaddr.raw() >= SHARED_BASE)
                    .count()
            })
            .sum();
        // Blackscholes is ~78% shared; with 8000 main-phase accesses this is
        // comfortably in the thousands.
        assert!(shared_count > 4_000, "only {shared_count} shared accesses");
    }

    #[test]
    fn blackscholes_init_is_done_by_thread0_only() {
        let profile = Benchmark::Blackscholes.profile();
        let gen = TraceGenerator::new(4, 100, 5);
        let w = gen.generate(Benchmark::Blackscholes);
        let shared_pages = (profile.shared_footprint_kb() * 1024).div_ceil(PAGE_BYTES) as usize;
        let private_init_lines = (profile.private_init_kb * 1024 / 64) as usize;
        // Thread 0's trace carries all the shared init stores plus its own
        // private init pass in addition to its main phase; the other threads
        // only have their private init pass and main phase.
        assert_eq!(
            w.threads[0].accesses.len(),
            shared_pages + private_init_lines + 100
        );
        assert_eq!(w.threads[1].accesses.len(), private_init_lines + 100);
        // The first init store is a write to the shared window.
        assert!(w.threads[0].accesses[0].write);
        assert!(w.threads[0].accesses[0].vaddr.raw() >= SHARED_BASE);
    }

    #[test]
    fn spread_init_touches_every_shared_page_exactly_once() {
        let bench = Benchmark::Barnes;
        let profile = bench.profile();
        let gen = TraceGenerator::new(4, 0, 5);
        let w = gen.generate(bench);
        let shared_pages = (profile.shared_footprint_kb() * 1024).div_ceil(PAGE_BYTES);
        let mut touched: HashSet<u64> = HashSet::new();
        for t in &w.threads {
            for a in &t.accesses {
                if a.vaddr.raw() >= SHARED_BASE {
                    touched.insert(a.vaddr.page().raw());
                }
            }
        }
        assert_eq!(touched.len() as u64, shared_pages);
    }

    #[test]
    fn private_init_pass_is_one_load_per_line() {
        let bench = Benchmark::OceanContiguous;
        let profile = bench.profile();
        let w = TraceGenerator::new(2, 0, 5).generate(bench);
        let init_lines = profile.private_init_kb * 1024 / 64;
        for t in &w.threads {
            let private_init: Vec<_> = t
                .accesses
                .iter()
                .filter(|a| a.vaddr.raw() < SHARED_BASE)
                .collect();
            assert_eq!(private_init.len() as u64, init_lines);
            assert!(private_init.iter().all(|a| !a.write));
            // Every access touches a distinct cache line.
            let lines: HashSet<u64> = private_init.iter().map(|a| a.vaddr.raw() / 64).collect();
            assert_eq!(lines.len() as u64, init_lines);
        }
    }

    #[test]
    fn write_fraction_is_roughly_respected() {
        let w = TraceGenerator::new(2, 20_000, 3).generate(Benchmark::OceanContiguous);
        let profile = Benchmark::OceanContiguous.profile();
        // Skip the init stores (all writes) by looking at the second thread
        // of a spread-init profile only beyond its init accesses.
        let t = &w.threads[1];
        let init_len = t.accesses.len() - 20_000;
        let main = &t.accesses[init_len..];
        let writes = main.iter().filter(|a| a.write).count() as f64;
        let frac = writes / main.len() as f64;
        // The observed fraction blends the private and shared write
        // fractions according to the shared fraction.
        let expected = profile.shared_fraction * profile.shared_write_fraction
            + (1.0 - profile.shared_fraction) * profile.write_fraction;
        assert!(
            (frac - expected).abs() < 0.02,
            "write fraction {frac} vs expected {expected}"
        );
    }

    #[test]
    fn streaming_region_addresses_wrap_within_region() {
        let w = TraceGenerator::new(1, 50_000, 11).generate(Benchmark::X264);
        let profile = Benchmark::X264.profile();
        let stream_base = SHARED_BASE + SHARED_STREAM_OFFSET;
        let stream_bytes = profile.shared_stream_kb * 1024;
        for a in &w.threads[0].accesses {
            let addr = a.vaddr.raw();
            if addr >= stream_base {
                assert!(addr < stream_base + stream_bytes);
            }
        }
    }

    #[test]
    fn mem_access_constructors() {
        assert!(!MemAccess::load(64).write);
        assert!(MemAccess::store(64).write);
        assert_eq!(MemAccess::load(64).vaddr.raw(), 64);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        TraceGenerator::new(0, 10, 1);
    }

    #[test]
    fn accessors() {
        let gen = TraceGenerator::new(8, 1000, 4);
        assert_eq!(gen.num_threads(), 8);
        assert_eq!(gen.accesses_per_thread(), 1000);
    }
}

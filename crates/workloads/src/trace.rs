//! Memory-access trace generation from benchmark profiles.

use crate::profile::{Benchmark, BenchmarkProfile};
use allarm_types::addr::{VirtAddr, PAGE_BYTES};
use allarm_types::ids::{CoreId, ThreadId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Byte distance between consecutive accesses in a streaming region; four
/// accesses touch a 64-byte line before moving on, modelling the spatial
/// locality of array traversals.
const STREAM_STRIDE_BYTES: u64 = 16;

/// Base virtual address of thread `t`'s private region (each thread gets a
/// 4 GiB window, far larger than any profile's footprint).
fn private_base(thread: usize) -> u64 {
    (thread as u64 + 1) << 32
}

/// Offset of the private streaming region within a thread's window.
const PRIVATE_STREAM_OFFSET: u64 = 1 << 30;

/// Offset of the private write-once initialisation region within a thread's
/// window.
const PRIVATE_INIT_OFFSET: u64 = 1 << 31;

/// Base virtual address of the process-wide shared region.
const SHARED_BASE: u64 = 0x7000_0000_0000;

/// Offset of the shared streaming region within the shared window.
const SHARED_STREAM_OFFSET: u64 = 1 << 34;

/// A single memory reference in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// The virtual address referenced.
    pub vaddr: VirtAddr,
    /// True for a store, false for a load.
    pub write: bool,
}

impl MemAccess {
    /// Creates a load access.
    pub fn load(vaddr: u64) -> Self {
        MemAccess {
            vaddr: VirtAddr::new(vaddr),
            write: false,
        }
    }

    /// Creates a store access.
    pub fn store(vaddr: u64) -> Self {
        MemAccess {
            vaddr: VirtAddr::new(vaddr),
            write: true,
        }
    }
}

/// The access trace of one software thread, plus the core it is pinned to by
/// the workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadTrace {
    /// The thread's identity.
    pub thread: ThreadId,
    /// The core this thread runs on for the whole simulation. (The paper
    /// does not pin threads, but its scheduler keeps them in place in the
    /// common case; a fixed placement keeps the model deterministic.)
    pub core: CoreId,
    /// The ordered sequence of memory references the thread issues.
    pub accesses: Vec<MemAccess>,
}

/// A complete multi-threaded (or multi-process) workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Human-readable name (benchmark name, possibly with a suffix).
    pub name: String,
    /// Per-thread traces.
    pub threads: Vec<ThreadTrace>,
}

impl Workload {
    /// Total number of memory references across all threads.
    pub fn total_accesses(&self) -> usize {
        self.threads.iter().map(|t| t.accesses.len()).sum()
    }

    /// A 64-bit FNV-1a checksum of the workload's replayable content: per
    /// thread, the thread id, pinned core, access count, and every
    /// `(address, write)` reference in order. The name is *not* hashed —
    /// the checksum identifies the reference stream, not its label.
    ///
    /// This is the checksum recorded in trace-file headers
    /// ([`crate::tracefile`]) and surfaced as `workload_checksum` in
    /// simulation reports, so a replayed trace is verifiable end to end.
    pub fn checksum(&self) -> u64 {
        let mut stream = ChecksumStream::new();
        for t in &self.threads {
            stream.begin_thread(t.thread, t.core, t.accesses.len() as u64);
            for a in &t.accesses {
                stream.access(*a);
            }
        }
        stream.finish()
    }

    /// The highest core index used by the workload plus one (the minimum
    /// machine size able to run it).
    pub fn cores_required(&self) -> usize {
        self.threads
            .iter()
            .map(|t| t.core.index() + 1)
            .max()
            .unwrap_or(0)
    }
}

/// Incremental form of [`Workload::checksum`], for callers that stream a
/// reference trace without ever materializing it (the frame-chunked trace
/// container computes truncated-prefix checksums this way). Feeding a
/// workload thread-by-thread, access-by-access produces exactly the value
/// `Workload::checksum` returns.
#[derive(Debug, Clone)]
pub struct ChecksumStream {
    hash: u64,
}

impl ChecksumStream {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a fresh checksum (no threads hashed yet).
    pub fn new() -> Self {
        ChecksumStream {
            hash: Self::FNV_OFFSET,
        }
    }

    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(Self::FNV_PRIME);
        }
    }

    /// Hashes the next thread's identity, pinning and access count; must be
    /// followed by exactly `accesses` calls to [`ChecksumStream::access`].
    pub fn begin_thread(&mut self, thread: ThreadId, core: CoreId, accesses: u64) {
        self.eat(&thread.raw().to_le_bytes());
        self.eat(&core.raw().to_le_bytes());
        self.eat(&accesses.to_le_bytes());
    }

    /// Hashes one reference of the current thread.
    pub fn access(&mut self, a: MemAccess) {
        self.eat(&a.vaddr.raw().to_le_bytes());
        self.eat(&[u8::from(a.write)]);
    }

    /// Returns the finished checksum.
    pub fn finish(self) -> u64 {
        self.hash
    }
}

impl Default for ChecksumStream {
    fn default() -> Self {
        ChecksumStream::new()
    }
}

/// Generates per-thread traces from a [`BenchmarkProfile`].
///
/// # Examples
///
/// ```
/// use allarm_workloads::{Benchmark, TraceGenerator};
///
/// let gen = TraceGenerator::new(4, 1_000, 7);
/// let workload = gen.generate(Benchmark::Barnes);
/// assert_eq!(workload.threads.len(), 4);
/// assert_eq!(workload.name, "barnes");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TraceGenerator {
    num_threads: usize,
    accesses_per_thread: usize,
    seed: u64,
}

impl TraceGenerator {
    /// Creates a generator for `num_threads` threads, each issuing
    /// `accesses_per_thread` references in its main phase, using `seed` for
    /// all randomness.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero.
    pub fn new(num_threads: usize, accesses_per_thread: usize, seed: u64) -> Self {
        assert!(num_threads > 0, "a workload needs at least one thread");
        TraceGenerator {
            num_threads,
            accesses_per_thread,
            seed,
        }
    }

    /// Number of threads the generator produces.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Main-phase accesses per thread.
    pub fn accesses_per_thread(&self) -> usize {
        self.accesses_per_thread
    }

    /// Generates the workload for a named benchmark. Serving-family
    /// benchmarks ([`Benchmark::SERVING`]) route to the dedicated
    /// key-value generator; everything else walks the hot/stream regions
    /// of its profile.
    pub fn generate(&self, benchmark: Benchmark) -> Workload {
        if benchmark == Benchmark::KvStore {
            return self.generate_kv(benchmark.name(), &benchmark.profile());
        }
        self.generate_profile(benchmark.name(), &benchmark.profile())
    }

    /// Generates a workload from an arbitrary profile (used by sensitivity
    /// experiments and tests).
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation.
    pub fn generate_profile(&self, name: &str, profile: &BenchmarkProfile) -> Workload {
        profile
            .validate()
            .unwrap_or_else(|e| panic!("invalid profile for {name}: {e}"));
        let threads = (0..self.num_threads)
            .map(|t| self.generate_thread(t, profile))
            .collect();
        Workload {
            name: name.to_string(),
            threads,
        }
    }

    /// The initialisation accesses for thread `t`: one store to every shared
    /// page this thread is responsible for first-touching. Under the
    /// first-touch policy these stores determine where shared pages are
    /// homed — on node 0 for the producer/consumer profiles, spread across
    /// all nodes otherwise.
    fn init_phase(&self, thread: usize, profile: &BenchmarkProfile) -> Vec<MemAccess> {
        let shared_bytes = profile.shared_footprint_kb() * 1024;
        let shared_pages = shared_bytes.div_ceil(PAGE_BYTES);
        let mut accesses = Vec::new();
        for page in 0..shared_pages {
            let owner = if profile.shared_init_by_thread0 {
                0
            } else {
                (page as usize) % self.num_threads
            };
            if owner == thread {
                let addr = self.shared_page_addr(page, profile);
                accesses.push(MemAccess::store(addr));
            }
        }
        accesses
    }

    /// Byte address of the start of the `page`-th page of the shared
    /// footprint (hot pages first, then streaming pages).
    fn shared_page_addr(&self, page: u64, profile: &BenchmarkProfile) -> u64 {
        let hot_pages = (profile.shared_hot_kb * 1024).div_ceil(PAGE_BYTES);
        if page < hot_pages {
            SHARED_BASE + page * PAGE_BYTES
        } else {
            SHARED_BASE + SHARED_STREAM_OFFSET + (page - hot_pages) * PAGE_BYTES
        }
    }

    /// Private initialisation pass: one load per cache line of the
    /// touch-once region (each thread scanning its slice of the input
    /// data set, building its private structures). Under first-touch
    /// these lines are homed locally; in the baseline each one allocates
    /// a probe-filter entry that sits stale after the clean line is
    /// silently dropped from the cache — exactly the thread-local waste
    /// ALLARM eliminates.
    fn private_init_pass(
        &self,
        thread: usize,
        profile: &BenchmarkProfile,
        accesses: &mut Vec<MemAccess>,
    ) {
        let init_lines = (profile.private_init_kb * 1024) / allarm_types::addr::LINE_BYTES;
        let private_init_base = private_base(thread) + PRIVATE_INIT_OFFSET;
        for line in 0..init_lines {
            accesses.push(MemAccess::load(
                private_init_base + line * allarm_types::addr::LINE_BYTES,
            ));
        }
    }

    /// Seeds thread `t`'s generator (shared by both generation paths).
    fn thread_rng(&self, thread: usize) -> StdRng {
        StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(thread as u64),
        )
    }

    fn generate_thread(&self, thread: usize, profile: &BenchmarkProfile) -> ThreadTrace {
        let mut rng = self.thread_rng(thread);

        let priv_hot_bytes = profile.private_hot_kb * 1024;
        let priv_stream_bytes = profile.private_stream_kb * 1024;
        let shared_hot_bytes = profile.shared_hot_kb * 1024;
        let shared_stream_bytes = profile.shared_stream_kb * 1024;

        let priv_base = private_base(thread);
        let priv_stream_base = priv_base + PRIVATE_STREAM_OFFSET;
        let shared_hot_base = SHARED_BASE;
        let shared_stream_base = SHARED_BASE + SHARED_STREAM_OFFSET;

        // Streaming cursors start at a per-thread offset so the threads do
        // not march through shared data in lockstep.
        let mut priv_stream_pos: u64 = 0;
        let mut shared_stream_pos: u64 = if shared_stream_bytes > 0 {
            (thread as u64 * shared_stream_bytes / self.num_threads as u64) / STREAM_STRIDE_BYTES
                * STREAM_STRIDE_BYTES
        } else {
            0
        };

        let mut accesses = self.init_phase(thread, profile);
        self.private_init_pass(thread, profile, &mut accesses);
        accesses.reserve(self.accesses_per_thread);

        for _ in 0..self.accesses_per_thread {
            let shared = rng.gen_bool(profile.shared_fraction);
            let write_fraction = if shared {
                profile.shared_write_fraction
            } else {
                profile.write_fraction
            };
            let vaddr = if shared {
                if shared_stream_bytes > 0 && rng.gen_bool(profile.shared_stream_fraction) {
                    let addr = shared_stream_base + shared_stream_pos;
                    shared_stream_pos =
                        (shared_stream_pos + STREAM_STRIDE_BYTES) % shared_stream_bytes;
                    addr
                } else if shared_hot_bytes > 0 {
                    shared_hot_base + align_down(rng.gen_range(0..shared_hot_bytes))
                } else {
                    shared_stream_base
                }
            } else if priv_stream_bytes > 0 && rng.gen_bool(profile.private_stream_fraction) {
                let addr = priv_stream_base + priv_stream_pos;
                priv_stream_pos = (priv_stream_pos + STREAM_STRIDE_BYTES) % priv_stream_bytes;
                addr
            } else if priv_hot_bytes > 0 {
                priv_base + align_down(rng.gen_range(0..priv_hot_bytes))
            } else {
                priv_stream_base
            };
            let write = rng.gen_bool(write_fraction);
            accesses.push(MemAccess {
                vaddr: VirtAddr::new(vaddr),
                write,
            });
        }

        ThreadTrace {
            thread: ThreadId::new(thread as u16),
            core: CoreId::new(thread as u16),
            accesses,
        }
    }

    /// Generates a serving-shaped key-value workload: every worker thread
    /// answers a stream of GET/PUT operations against one shared store.
    /// An operation probes the uniformly-hashed index (the profile's
    /// shared hot region) or touches a value record (the shared stream
    /// region); record keys are drawn Zipf-like, concentrated in a hot
    /// set that drifts through the keyspace as the trace progresses —
    /// popularity churn no region-walk profile can express, and the
    /// access pattern that keeps a directory's sharer sets both wide
    /// (everyone reads the hot keys) and unstable (the hot keys change).
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation.
    pub fn generate_kv(&self, name: &str, profile: &BenchmarkProfile) -> Workload {
        profile
            .validate()
            .unwrap_or_else(|e| panic!("invalid profile for {name}: {e}"));
        let threads = (0..self.num_threads)
            .map(|t| self.generate_kv_thread(t, profile))
            .collect();
        Workload {
            name: name.to_string(),
            threads,
        }
    }

    fn generate_kv_thread(&self, thread: usize, profile: &BenchmarkProfile) -> ThreadTrace {
        let mut rng = self.thread_rng(thread);

        let index_bytes = profile.shared_hot_kb * 1024;
        let store_bytes = profile.shared_stream_kb * 1024;
        let priv_hot_bytes = profile.private_hot_kb * 1024;
        let priv_stream_bytes = profile.private_stream_kb * 1024;
        // The hot set covers a fixed slice of the keyspace; its *position*
        // advances every KV_DRIFT_PERIOD operations. All threads follow
        // the same drift schedule — popularity is a property of the data,
        // not of the client — so the sharer set of a hot line is every
        // node right up until the line falls out of fashion.
        let hot_span = (store_bytes / 32).max(LINE_BYTES);

        let priv_base = private_base(thread);
        let priv_stream_base = priv_base + PRIVATE_STREAM_OFFSET;
        let index_base = SHARED_BASE;
        let store_base = SHARED_BASE + SHARED_STREAM_OFFSET;

        // First-touch homing works exactly as for the batch profiles: the
        // store's pages are spread across the threads (a pre-warmed cache
        // whose slabs were faulted in round-robin), and each worker builds
        // its private connection state.
        let mut accesses = self.init_phase(thread, profile);
        self.private_init_pass(thread, profile, &mut accesses);
        accesses.reserve(self.accesses_per_thread);

        let mut priv_stream_pos: u64 = 0;
        for op in 0..self.accesses_per_thread {
            let epoch = (op / KV_DRIFT_PERIOD) as u64;
            let hot_base = (epoch * KV_DRIFT_STRIDE) % store_bytes;
            let access = if rng.gen_bool(profile.shared_fraction) {
                let put = rng.gen_bool(profile.shared_write_fraction);
                let vaddr = if rng.gen_bool(profile.shared_stream_fraction) {
                    // A value record: Zipf-weighted key, usually inside
                    // the drifting hot set, wrapping at the store's end.
                    let key = if rng.gen_bool(KV_HOT_FRACTION) {
                        (hot_base + zipf_offset(&mut rng, hot_span)) % store_bytes
                    } else {
                        zipf_offset(&mut rng, store_bytes)
                    };
                    store_base + line_align(key)
                } else {
                    // An index probe: bucket hashes scatter uniformly.
                    index_base + line_align(rng.gen_range(0..index_bytes))
                };
                MemAccess {
                    vaddr: VirtAddr::new(vaddr),
                    write: put,
                }
            } else if priv_stream_bytes > 0 && rng.gen_bool(profile.private_stream_fraction) {
                // Request/response buffer fill, written as it streams.
                let addr = priv_stream_base + priv_stream_pos;
                priv_stream_pos = (priv_stream_pos + STREAM_STRIDE_BYTES) % priv_stream_bytes;
                MemAccess::store(addr)
            } else {
                // Connection scratch (parse state, per-request bookkeeping).
                MemAccess {
                    vaddr: VirtAddr::new(priv_base + align_down(rng.gen_range(0..priv_hot_bytes))),
                    write: rng.gen_bool(profile.write_fraction),
                }
            };
            accesses.push(access);
        }

        ThreadTrace {
            thread: ThreadId::new(thread as u16),
            core: CoreId::new(thread as u16),
            accesses,
        }
    }
}

/// Traffic share of the drifting hot key set in the kv generator; the
/// remainder Zipf-scans the whole keyspace (cold keys and crawlers).
const KV_HOT_FRACTION: f64 = 0.75;

/// Operations between hot-set advances in the kv generator.
const KV_DRIFT_PERIOD: usize = 4096;

/// Bytes the kv hot set advances per drift epoch.
const KV_DRIFT_STRIDE: u64 = 64 * 1024;

/// Cache-line size, re-exported locally for record alignment.
const LINE_BYTES: u64 = allarm_types::addr::LINE_BYTES;

/// A Zipf-like (log-uniform, exponent ≈ 1) byte offset in `[0, span)`:
/// offset `r` is drawn with probability ∝ 1/r, so a handful of keys at
/// the start of the span absorb most of the traffic.
fn zipf_offset(rng: &mut StdRng, span: u64) -> u64 {
    let r = (span as f64).powf(rng.gen::<f64>());
    (r as u64).clamp(1, span) - 1
}

/// Aligns a record offset down to its cache line (a GET reads the whole
/// line the record starts in).
fn line_align(offset: u64) -> u64 {
    offset / LINE_BYTES * LINE_BYTES
}

fn align_down(addr: u64) -> u64 {
    addr / STREAM_STRIDE_BYTES * STREAM_STRIDE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn quick(bench: Benchmark) -> Workload {
        TraceGenerator::new(4, 2_000, 123).generate(bench)
    }

    #[test]
    fn generates_one_trace_per_thread_on_distinct_cores() {
        let w = quick(Benchmark::Barnes);
        assert_eq!(w.threads.len(), 4);
        let cores: HashSet<CoreId> = w.threads.iter().map(|t| t.core).collect();
        assert_eq!(cores.len(), 4);
        assert_eq!(w.cores_required(), 4);
        assert!(w.total_accesses() >= 4 * 2_000);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = TraceGenerator::new(4, 500, 9).generate(Benchmark::Cholesky);
        let b = TraceGenerator::new(4, 500, 9).generate(Benchmark::Cholesky);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceGenerator::new(2, 500, 1).generate(Benchmark::Cholesky);
        let b = TraceGenerator::new(2, 500, 2).generate(Benchmark::Cholesky);
        assert_ne!(a, b);
    }

    #[test]
    fn private_addresses_are_disjoint_between_threads() {
        let w = quick(Benchmark::OceanContiguous);
        // Any address below SHARED_BASE belongs to exactly one thread's
        // 4 GiB window.
        for t in &w.threads {
            for a in &t.accesses {
                let addr = a.vaddr.raw();
                if addr < SHARED_BASE {
                    let window = addr >> 32;
                    assert_eq!(window, t.thread.index() as u64 + 1);
                }
            }
        }
    }

    #[test]
    fn shared_accesses_exist_and_are_in_shared_window() {
        let w = quick(Benchmark::Blackscholes);
        let shared_count: usize = w
            .threads
            .iter()
            .map(|t| {
                t.accesses
                    .iter()
                    .filter(|a| a.vaddr.raw() >= SHARED_BASE)
                    .count()
            })
            .sum();
        // Blackscholes is ~78% shared; with 8000 main-phase accesses this is
        // comfortably in the thousands.
        assert!(shared_count > 4_000, "only {shared_count} shared accesses");
    }

    #[test]
    fn blackscholes_init_is_done_by_thread0_only() {
        let profile = Benchmark::Blackscholes.profile();
        let gen = TraceGenerator::new(4, 100, 5);
        let w = gen.generate(Benchmark::Blackscholes);
        let shared_pages = (profile.shared_footprint_kb() * 1024).div_ceil(PAGE_BYTES) as usize;
        let private_init_lines = (profile.private_init_kb * 1024 / 64) as usize;
        // Thread 0's trace carries all the shared init stores plus its own
        // private init pass in addition to its main phase; the other threads
        // only have their private init pass and main phase.
        assert_eq!(
            w.threads[0].accesses.len(),
            shared_pages + private_init_lines + 100
        );
        assert_eq!(w.threads[1].accesses.len(), private_init_lines + 100);
        // The first init store is a write to the shared window.
        assert!(w.threads[0].accesses[0].write);
        assert!(w.threads[0].accesses[0].vaddr.raw() >= SHARED_BASE);
    }

    #[test]
    fn spread_init_touches_every_shared_page_exactly_once() {
        let bench = Benchmark::Barnes;
        let profile = bench.profile();
        let gen = TraceGenerator::new(4, 0, 5);
        let w = gen.generate(bench);
        let shared_pages = (profile.shared_footprint_kb() * 1024).div_ceil(PAGE_BYTES);
        let mut touched: HashSet<u64> = HashSet::new();
        for t in &w.threads {
            for a in &t.accesses {
                if a.vaddr.raw() >= SHARED_BASE {
                    touched.insert(a.vaddr.page().raw());
                }
            }
        }
        assert_eq!(touched.len() as u64, shared_pages);
    }

    #[test]
    fn private_init_pass_is_one_load_per_line() {
        let bench = Benchmark::OceanContiguous;
        let profile = bench.profile();
        let w = TraceGenerator::new(2, 0, 5).generate(bench);
        let init_lines = profile.private_init_kb * 1024 / 64;
        for t in &w.threads {
            let private_init: Vec<_> = t
                .accesses
                .iter()
                .filter(|a| a.vaddr.raw() < SHARED_BASE)
                .collect();
            assert_eq!(private_init.len() as u64, init_lines);
            assert!(private_init.iter().all(|a| !a.write));
            // Every access touches a distinct cache line.
            let lines: HashSet<u64> = private_init.iter().map(|a| a.vaddr.raw() / 64).collect();
            assert_eq!(lines.len() as u64, init_lines);
        }
    }

    #[test]
    fn write_fraction_is_roughly_respected() {
        let w = TraceGenerator::new(2, 20_000, 3).generate(Benchmark::OceanContiguous);
        let profile = Benchmark::OceanContiguous.profile();
        // Skip the init stores (all writes) by looking at the second thread
        // of a spread-init profile only beyond its init accesses.
        let t = &w.threads[1];
        let init_len = t.accesses.len() - 20_000;
        let main = &t.accesses[init_len..];
        let writes = main.iter().filter(|a| a.write).count() as f64;
        let frac = writes / main.len() as f64;
        // The observed fraction blends the private and shared write
        // fractions according to the shared fraction.
        let expected = profile.shared_fraction * profile.shared_write_fraction
            + (1.0 - profile.shared_fraction) * profile.write_fraction;
        assert!(
            (frac - expected).abs() < 0.02,
            "write fraction {frac} vs expected {expected}"
        );
    }

    #[test]
    fn streaming_region_addresses_wrap_within_region() {
        let w = TraceGenerator::new(1, 50_000, 11).generate(Benchmark::X264);
        let profile = Benchmark::X264.profile();
        let stream_base = SHARED_BASE + SHARED_STREAM_OFFSET;
        let stream_bytes = profile.shared_stream_kb * 1024;
        for a in &w.threads[0].accesses {
            let addr = a.vaddr.raw();
            if addr >= stream_base {
                assert!(addr < stream_base + stream_bytes);
            }
        }
    }

    #[test]
    fn kv_store_traffic_is_skewed_shared_and_line_aligned() {
        let bench = Benchmark::KvStore;
        let profile = bench.profile();
        let w = TraceGenerator::new(4, 20_000, 17).generate(bench);
        assert_eq!(w.name, "kv-store");
        let store_base = SHARED_BASE + SHARED_STREAM_OFFSET;
        let store_bytes = profile.shared_stream_kb * 1024;
        let index_bytes = profile.shared_hot_kb * 1024;
        let t = &w.threads[1]; // thread 0 carries no extra init in spread mode
        let init_len = t.accesses.len() - 20_000;
        let main = &t.accesses[init_len..];

        // Shared fraction holds, and every shared access stays in its
        // region, aligned to a cache line (records) as advertised.
        let mut shared = 0usize;
        let mut line_counts = std::collections::HashMap::<u64, u32>::new();
        for a in main {
            let addr = a.vaddr.raw();
            if addr >= SHARED_BASE {
                shared += 1;
                if addr >= store_base {
                    assert!(addr < store_base + store_bytes);
                    assert_eq!(addr % 64, 0);
                    *line_counts.entry(addr).or_default() += 1;
                } else {
                    assert!(addr < SHARED_BASE + index_bytes);
                }
            }
        }
        let frac = shared as f64 / main.len() as f64;
        assert!((frac - profile.shared_fraction).abs() < 0.02, "{frac}");

        // Zipf skew: the busiest 1% of touched value lines absorb far
        // more than 1% of the record traffic.
        let mut counts: Vec<u32> = line_counts.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u32 = counts.iter().sum();
        let top: u32 = counts[..counts.len().div_ceil(100)].iter().sum();
        assert!(
            f64::from(top) > 0.1 * f64::from(total),
            "top 1% of lines got {top} of {total} record accesses — not skewed"
        );
    }

    #[test]
    fn kv_hot_set_drifts_between_epochs() {
        // The hot window's span exceeds the per-epoch drift stride, so
        // neighbouring epochs overlap by design (popularity churns, it
        // does not teleport). Compare epochs far enough apart that their
        // windows cannot overlap at all.
        let bench = Benchmark::KvStore;
        let profile = bench.profile();
        let store_bytes = profile.shared_stream_kb * 1024;
        let hot_span = (store_bytes / 32).max(64);
        let distinct_epochs = 2 + (hot_span / (64 * 1024)) as usize; // far enough to clear the span
        let ops = 4096 * (distinct_epochs + 1);
        let w = TraceGenerator::new(1, ops, 23).generate(bench);
        let t = &w.threads[0];
        let main = &t.accesses[t.accesses.len() - ops..];
        let store_base = SHARED_BASE + SHARED_STREAM_OFFSET;
        let record_lines = |range: std::ops::Range<usize>| -> std::collections::HashSet<u64> {
            main[range]
                .iter()
                .filter(|a| a.vaddr.raw() >= store_base)
                .map(|a| a.vaddr.raw())
                .collect()
        };
        let early = record_lines(0..4096);
        let late = record_lines(4096 * distinct_epochs..ops);
        // The hot sets moved: most heavily-hit lines of the first epoch
        // are no longer being hit in the late epoch.
        let overlap = early.intersection(&late).count();
        assert!(
            (overlap as f64) < 0.5 * early.len() as f64,
            "hot set did not drift: {overlap} of {} early lines still hot",
            early.len()
        );
    }

    #[test]
    fn kv_generation_is_deterministic_and_seed_sensitive() {
        let a = TraceGenerator::new(2, 2_000, 5).generate(Benchmark::KvStore);
        let b = TraceGenerator::new(2, 2_000, 5).generate(Benchmark::KvStore);
        let c = TraceGenerator::new(2, 2_000, 6).generate(Benchmark::KvStore);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.threads.len(), 2);
        assert_eq!(a.cores_required(), 2);
    }

    #[test]
    fn mem_access_constructors() {
        assert!(!MemAccess::load(64).write);
        assert!(MemAccess::store(64).write);
        assert_eq!(MemAccess::load(64).vaddr.raw(), 64);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        TraceGenerator::new(0, 10, 1);
    }

    #[test]
    fn accessors() {
        let gen = TraceGenerator::new(8, 1000, 4);
        assert_eq!(gen.num_threads(), 8);
        assert_eq!(gen.accesses_per_thread(), 1000);
    }
}

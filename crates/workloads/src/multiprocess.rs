//! The multi-process workload of the paper's Section III-B.
//!
//! The paper's second experiment runs **two single-threaded copies** of a
//! SPLASH2 benchmark, co-ordinated only to start together, and measures how
//! performance, probe-filter evictions and network traffic respond to
//! shrinking the probe filter (Fig. 4). Because each copy's data is entirely
//! its own and is homed on its own node by first-touch, the baseline wastes
//! the whole probe filter on data nobody else will ever request — exactly
//! the scenario ALLARM was designed to optimise.

use crate::profile::Benchmark;
use crate::trace::{ThreadTrace, TraceGenerator, Workload};
use allarm_types::ids::CoreId;

/// Builds the two-copy, single-thread-per-copy workload for `benchmark`.
///
/// Each copy is generated as an independent single-threaded instance of the
/// benchmark (separate virtual address spaces, so the copies share nothing),
/// and the `i`-th copy is pinned to `cores[i]`.
///
/// # Panics
///
/// Panics if `cores` is empty or contains duplicate entries.
///
/// # Examples
///
/// ```
/// use allarm_workloads::{multiprocess_workload, Benchmark};
/// use allarm_types::ids::CoreId;
///
/// let w = multiprocess_workload(
///     Benchmark::Barnes,
///     5_000,
///     42,
///     &[CoreId::new(0), CoreId::new(8)],
/// );
/// assert_eq!(w.threads.len(), 2);
/// assert_eq!(w.threads[1].core, CoreId::new(8));
/// ```
pub fn multiprocess_workload(
    benchmark: Benchmark,
    accesses_per_process: usize,
    seed: u64,
    cores: &[CoreId],
) -> Workload {
    assert!(
        !cores.is_empty(),
        "a multi-process workload needs at least one process"
    );
    let distinct: std::collections::HashSet<CoreId> = cores.iter().copied().collect();
    assert_eq!(
        distinct.len(),
        cores.len(),
        "process cores must be distinct"
    );

    let mut threads: Vec<ThreadTrace> = Vec::with_capacity(cores.len());
    for (copy, core) in cores.iter().enumerate() {
        // Each copy is an independent single-threaded run with its own seed;
        // generating it as "thread 0" gives it the full private window, and
        // shifting every address by a copy-specific offset keeps the copies'
        // address spaces disjoint (separate processes share nothing).
        let single = TraceGenerator::new(
            1,
            accesses_per_process,
            seed.wrapping_add(copy as u64 * 0x005D_5821),
        )
        .generate(benchmark);
        let mut trace = single
            .threads
            .into_iter()
            .next()
            .expect("one thread was generated");
        let offset = copy as u64 * (1u64 << 44);
        for access in &mut trace.accesses {
            access.vaddr = allarm_types::addr::VirtAddr::new(access.vaddr.raw() + offset);
        }
        trace.core = *core;
        trace.thread = allarm_types::ids::ThreadId::new(copy as u16);
        threads.push(trace);
    }

    Workload {
        name: format!("{}-2p", benchmark.name()),
        threads,
    }
}

/// Builds a datacenter-consolidation workload: `tenants` independent
/// single-threaded processes packed onto cores `0..tenants`, tenant `i`
/// running `benchmarks[i % benchmarks.len()]`. This generalizes the
/// paper's two-copy Fig. 4 setup to the dozens-of-tenants node the north
/// star implies — every tenant's data is private and homed locally by
/// first-touch, so the baseline probe filter drowns in entries nobody
/// will ever probe, across many more cores than the paper measured.
///
/// Each tenant's address space is shifted by a tenant-specific offset of
/// `1 << 48` bytes (a single-threaded instance spans well under 2^47
/// bytes including its shared window, so unlike the two-copy experiment's
/// `1 << 44` shift, dozens of tenants stay disjoint), and tenant seeds
/// reuse the multiprocess per-copy mixing so a 2-tenant consolidation of
/// one benchmark reproduces Fig. 4's structure.
///
/// # Panics
///
/// Panics if `benchmarks` is empty or `tenants` is zero.
///
/// # Examples
///
/// ```
/// use allarm_workloads::{consolidation_workload, Benchmark};
///
/// let w = consolidation_workload(
///     &[Benchmark::Barnes, Benchmark::KvStore],
///     4,
///     2_000,
///     42,
/// );
/// assert_eq!(w.threads.len(), 4);
/// assert_eq!(w.cores_required(), 4);
/// ```
pub fn consolidation_workload(
    benchmarks: &[Benchmark],
    tenants: usize,
    accesses_per_tenant: usize,
    seed: u64,
) -> Workload {
    assert!(
        !benchmarks.is_empty(),
        "a consolidation workload needs at least one benchmark"
    );
    assert!(
        tenants > 0,
        "a consolidation workload needs at least one tenant"
    );

    let mut threads: Vec<ThreadTrace> = Vec::with_capacity(tenants);
    for tenant in 0..tenants {
        let benchmark = benchmarks[tenant % benchmarks.len()];
        let single = TraceGenerator::new(
            1,
            accesses_per_tenant,
            seed.wrapping_add(tenant as u64 * 0x005D_5821),
        )
        .generate(benchmark);
        let mut trace = single
            .threads
            .into_iter()
            .next()
            .expect("one thread was generated");
        let offset = (tenant as u64) << 48;
        for access in &mut trace.accesses {
            access.vaddr = allarm_types::addr::VirtAddr::new(access.vaddr.raw() + offset);
        }
        trace.core = CoreId::new(tenant as u16);
        trace.thread = allarm_types::ids::ThreadId::new(tenant as u16);
        threads.push(trace);
    }

    Workload {
        name: format!("consolidation-{tenants}t"),
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn builds_one_trace_per_process_on_requested_cores() {
        let w = multiprocess_workload(
            Benchmark::Cholesky,
            1_000,
            7,
            &[CoreId::new(0), CoreId::new(8)],
        );
        assert_eq!(w.threads.len(), 2);
        assert_eq!(w.threads[0].core, CoreId::new(0));
        assert_eq!(w.threads[1].core, CoreId::new(8));
        assert_eq!(w.name, "cholesky-2p");
    }

    #[test]
    fn copies_share_no_pages() {
        let w = multiprocess_workload(
            Benchmark::Barnes,
            2_000,
            9,
            &[CoreId::new(0), CoreId::new(8)],
        );
        let pages_of = |trace: &crate::ThreadTrace| -> HashSet<u64> {
            trace
                .accesses
                .iter()
                .map(|a| a.vaddr.page().raw())
                .collect()
        };
        let a = pages_of(&w.threads[0]);
        let b = pages_of(&w.threads[1]);
        assert!(a.is_disjoint(&b), "process address spaces must be disjoint");
    }

    #[test]
    fn copies_use_different_seeds_but_same_structure() {
        let w = multiprocess_workload(
            Benchmark::OceanContiguous,
            1_000,
            11,
            &[CoreId::new(0), CoreId::new(8)],
        );
        assert_eq!(w.threads[0].accesses.len(), w.threads[1].accesses.len());
        // The address *patterns* differ (different seed) even though the
        // profile is identical.
        let same = w.threads[0]
            .accesses
            .iter()
            .zip(&w.threads[1].accesses)
            .filter(|(x, y)| x.vaddr.raw() == y.vaddr.raw())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn is_deterministic() {
        let cores = [CoreId::new(0), CoreId::new(8)];
        let a = multiprocess_workload(Benchmark::Barnes, 500, 3, &cores);
        let b = multiprocess_workload(Benchmark::Barnes, 500, 3, &cores);
        assert_eq!(a, b);
    }

    #[test]
    fn consolidation_packs_disjoint_tenants_round_robin() {
        let benches = [Benchmark::Barnes, Benchmark::KvStore];
        let w = consolidation_workload(&benches, 5, 500, 13);
        assert_eq!(w.name, "consolidation-5t");
        assert_eq!(w.threads.len(), 5);
        assert_eq!(w.cores_required(), 5);
        // Every tenant's pages are its own — no cross-tenant sharing.
        let pages: Vec<HashSet<u64>> = w
            .threads
            .iter()
            .map(|t| t.accesses.iter().map(|a| a.vaddr.page().raw()).collect())
            .collect();
        for i in 0..pages.len() {
            for j in i + 1..pages.len() {
                assert!(pages[i].is_disjoint(&pages[j]), "tenants {i} and {j} share");
            }
        }
        // Round-robin assignment: tenants 0 and 2 run the same benchmark
        // with different seeds, tenants 0 and 1 run different ones, and a
        // kv tenant (odd slots) issues line-aligned record traffic its
        // barnes neighbours never do.
        assert_eq!(w.threads[0].accesses.len(), w.threads[2].accesses.len());
        assert_ne!(w.threads[0].accesses, w.threads[2].accesses);
        assert_ne!(w.threads[0].accesses.len(), w.threads[1].accesses.len());
    }

    #[test]
    fn consolidation_is_deterministic_and_scales_past_the_fig4_shift() {
        let benches = [Benchmark::OceanContiguous];
        let a = consolidation_workload(&benches, 12, 300, 3);
        let b = consolidation_workload(&benches, 12, 300, 3);
        assert_eq!(a, b);
        // Twelve tenants would collide under the two-copy 1<<44 shift
        // (seven shifts reach the shared window); the 1<<48 stride keeps
        // even tenant 11's lowest address above tenant 10's whole space.
        let max_addr = |t: &crate::ThreadTrace| t.accesses.iter().map(|x| x.vaddr.raw()).max();
        let min_addr = |t: &crate::ThreadTrace| t.accesses.iter().map(|x| x.vaddr.raw()).min();
        for i in 0..11 {
            assert!(max_addr(&a.threads[i]) < min_addr(&a.threads[i + 1]));
        }
    }

    #[test]
    #[should_panic(expected = "at least one benchmark")]
    fn consolidation_rejects_empty_benchmark_list() {
        consolidation_workload(&[], 2, 10, 1);
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn consolidation_rejects_zero_tenants() {
        consolidation_workload(&[Benchmark::Barnes], 0, 10, 1);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_cores_rejected() {
        multiprocess_workload(Benchmark::Barnes, 10, 1, &[CoreId::new(0), CoreId::new(0)]);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn empty_core_list_rejected() {
        multiprocess_workload(Benchmark::Barnes, 10, 1, &[]);
    }
}

//! The pull-based workload feed the simulator replays.
//!
//! Historically the sharded kernel indexed straight into a materialized
//! [`Workload`]'s access vectors. [`AccessSource`] abstracts that feed
//! point so the same kernel can replay either
//!
//! * a **materialized** workload (generated in-process or decoded from a
//!   v1 trace file) — the reference path, or
//! * a **streaming** frame-chunked v2 trace ([`TraceSource`]) — one
//!   decoded frame per thread in memory, so multi-hundred-million-access
//!   traces replay without ever materializing.
//!
//! Both paths expose identical metadata (name, checksum, per-thread
//! shapes) and identical per-record streams, which is what lets a
//! streaming replay's simulation report be byte-identical to the
//! materialized run's.
//!
//! # Examples
//!
//! ```
//! use allarm_workloads::{AccessSource, Benchmark, TraceGenerator};
//!
//! let workload = TraceGenerator::new(2, 50, 7).generate(Benchmark::Barnes);
//! let source = AccessSource::from(&workload);
//! assert_eq!(source.checksum(), workload.checksum());
//! let mut feed = source.open_thread(0, 0).unwrap();
//! assert_eq!(feed.get(0), Some(workload.threads[0].accesses[0]));
//! ```

use crate::trace::{MemAccess, Workload};
use crate::tracefile::{FrameFeed, TraceError, TraceSource, TraceThread};
use allarm_types::ids::{CoreId, ThreadId};

/// One thread's replay metadata, identical across both feed kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceThread {
    /// The software thread's identity.
    pub thread: ThreadId,
    /// The core the thread is pinned to.
    pub core: CoreId,
    /// Records this thread replays (after any truncation limit).
    pub accesses: u64,
}

/// A replayable reference stream: either a borrowed materialized
/// [`Workload`] or a streaming [`TraceSource`] over a v2 trace file.
#[derive(Debug, Clone, Copy)]
pub enum AccessSource<'a> {
    /// Every access already in memory (the reference path).
    Workload(&'a Workload),
    /// Frames decoded on demand from a v2 trace file.
    Trace(&'a TraceSource),
}

impl<'a> From<&'a Workload> for AccessSource<'a> {
    fn from(workload: &'a Workload) -> Self {
        AccessSource::Workload(workload)
    }
}

impl<'a> From<&'a TraceSource> for AccessSource<'a> {
    fn from(source: &'a TraceSource) -> Self {
        AccessSource::Trace(source)
    }
}

impl<'a> AccessSource<'a> {
    /// The workload's human-readable name.
    pub fn name(&self) -> &'a str {
        match self {
            AccessSource::Workload(w) => &w.name,
            AccessSource::Trace(t) => t.name(),
        }
    }

    /// The effective [`Workload::checksum`] of the replayed stream.
    pub fn checksum(&self) -> u64 {
        match self {
            AccessSource::Workload(w) => w.checksum(),
            AccessSource::Trace(t) => t.checksum(),
        }
    }

    /// Per-thread replay metadata, in stream order.
    pub fn threads(&self) -> Vec<SourceThread> {
        match self {
            AccessSource::Workload(w) => w
                .threads
                .iter()
                .map(|t| SourceThread {
                    thread: t.thread,
                    core: t.core,
                    accesses: t.accesses.len() as u64,
                })
                .collect(),
            AccessSource::Trace(t) => t
                .threads()
                .iter()
                .map(|t: &TraceThread| SourceThread {
                    thread: t.thread,
                    core: t.core,
                    accesses: t.accesses,
                })
                .collect(),
        }
    }

    /// Number of threads in the stream.
    pub fn num_threads(&self) -> usize {
        match self {
            AccessSource::Workload(w) => w.threads.len(),
            AccessSource::Trace(t) => t.header().threads.len(),
        }
    }

    /// Total records replayed across all threads.
    pub fn total_accesses(&self) -> u64 {
        match self {
            AccessSource::Workload(w) => w.total_accesses() as u64,
            AccessSource::Trace(t) => t.total_accesses(),
        }
    }

    /// Minimum machine size able to replay this stream.
    pub fn cores_required(&self) -> usize {
        match self {
            AccessSource::Workload(w) => w.cores_required(),
            AccessSource::Trace(t) => t.cores_required(),
        }
    }

    /// Opens a per-thread cursor positioned at record `start` (0 for a
    /// fresh run; a snapshot cursor on restore).
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] when a streaming source cannot reopen its
    /// file or the primed frame fails verification. The materialized path
    /// is infallible.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn open_thread(&self, thread: usize, start: u64) -> Result<ThreadFeed<'a>, TraceError> {
        match self {
            AccessSource::Workload(w) => Ok(ThreadFeed::Slice(&w.threads[thread].accesses)),
            AccessSource::Trace(t) => Ok(ThreadFeed::Frames(t.open_thread(thread, start)?)),
        }
    }
}

/// A per-thread record cursor: the kernel's single feed point.
#[derive(Debug)]
pub enum ThreadFeed<'a> {
    /// Direct indexing into a materialized access vector.
    Slice(&'a [MemAccess]),
    /// Frame-at-a-time streaming decode.
    Frames(FrameFeed<'a>),
}

impl ThreadFeed<'_> {
    /// The record at `idx`, or `None` past the end of the stream —
    /// exactly `accesses.get(idx).copied()` on the materialized path.
    ///
    /// # Panics
    ///
    /// Panics if a streaming frame fails verification mid-replay (see
    /// [`FrameFeed::get`]).
    pub fn get(&mut self, idx: usize) -> Option<MemAccess> {
        match self {
            ThreadFeed::Slice(accesses) => accesses.get(idx).copied(),
            ThreadFeed::Frames(feed) => feed.get(idx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Benchmark;
    use crate::trace::TraceGenerator;
    use crate::tracefile::{self, TraceFormat};

    #[test]
    fn materialized_source_mirrors_the_workload() {
        let workload = TraceGenerator::new(3, 120, 9).generate(Benchmark::Cholesky);
        let source = AccessSource::from(&workload);
        assert_eq!(source.name(), workload.name);
        assert_eq!(source.checksum(), workload.checksum());
        assert_eq!(source.total_accesses(), workload.total_accesses() as u64);
        assert_eq!(source.cores_required(), workload.cores_required());
        let threads = source.threads();
        assert_eq!(threads.len(), workload.threads.len());
        for (meta, t) in threads.iter().zip(&workload.threads) {
            assert_eq!(meta.thread, t.thread);
            assert_eq!(meta.core, t.core);
            assert_eq!(meta.accesses, t.accesses.len() as u64);
        }
    }

    #[test]
    fn streaming_and_materialized_feeds_agree_record_for_record() {
        let workload = TraceGenerator::new(2, 300, 4).generate(Benchmark::Barnes);
        let dir = std::env::temp_dir().join(format!("allarm-source-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("feed.btrace");
        // A tiny frame length forces many frames even on a small trace.
        tracefile::write_trace_file_framed(&path, &workload, TraceFormat::BinaryV2, 64).unwrap();
        let trace = TraceSource::open(&path).unwrap();
        let streaming = AccessSource::from(&trace);
        let materialized = AccessSource::from(&workload);
        assert_eq!(streaming.checksum(), materialized.checksum());
        assert_eq!(streaming.threads(), materialized.threads());
        for thread in 0..workload.threads.len() {
            let mut a = materialized.open_thread(thread, 0).unwrap();
            let mut b = streaming.open_thread(thread, 0).unwrap();
            let mut idx = 0;
            loop {
                let (x, y) = (a.get(idx), b.get(idx));
                assert_eq!(x, y, "thread {thread} record {idx}");
                if x.is_none() {
                    break;
                }
                idx += 1;
            }
            assert_eq!(idx, workload.threads[thread].accesses.len());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Benchmark identities and their memory-behaviour profiles.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The eight SPLASH2 / PARSEC benchmarks the paper evaluates (Fig. 2–4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// SPLASH2 `barnes` — hierarchical N-body; good data isolation.
    Barnes,
    /// PARSEC `blackscholes` — option pricing; data initialised by the main
    /// thread and read by workers (producer/consumer sharing rooted at
    /// CPU 0).
    Blackscholes,
    /// SPLASH2 `cholesky` — sparse matrix factorisation.
    Cholesky,
    /// PARSEC `dedup` — pipeline-parallel compression; heavy shared state.
    Dedup,
    /// PARSEC `fluidanimate` — particle simulation with a working set large
    /// enough that capacity misses dominate (the one slowdown in Fig. 3a).
    Fluidanimate,
    /// SPLASH2 `ocean` (contiguous partitions) — the largest ALLARM win.
    OceanContiguous,
    /// SPLASH2 `ocean` (non-contiguous partitions).
    OceanNonContiguous,
    /// PARSEC `x264` — video encoding; mostly shared, streaming frames.
    X264,
    /// PARSEC `streamcluster` — online k-median clustering. Not part of the
    /// paper's evaluation (absent from [`Benchmark::ALL`]); added for wider
    /// workload coverage. Small per-thread hot state; the point stream is a
    /// large shared read-mostly region.
    Streamcluster,
    /// SPLASH2 `raytrace` — ray tracing against a shared scene. Not part of
    /// the paper's evaluation (absent from [`Benchmark::ALL`]); added as
    /// the sharing-aware profile for the scaled (64-core, multi-core-node)
    /// machines: a large read-mostly scene shared by every thread, small
    /// per-thread ray state, and almost no shared writes — so directory
    /// pressure comes from genuine cross-node sharing rather than private
    /// data, exactly the regime hierarchical sharer tracking targets.
    Raytrace,
}

impl Benchmark {
    /// All benchmarks, in the order the paper's figures list them.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Barnes,
        Benchmark::Blackscholes,
        Benchmark::Cholesky,
        Benchmark::Dedup,
        Benchmark::Fluidanimate,
        Benchmark::OceanContiguous,
        Benchmark::OceanNonContiguous,
        Benchmark::X264,
    ];

    /// Every benchmark with a profile: the paper's eight plus later
    /// additions. Figure grids stay on [`Benchmark::ALL`]; sweeps that are
    /// not reproducing the paper can draw from this list.
    pub const EXTENDED: [Benchmark; 10] = [
        Benchmark::Barnes,
        Benchmark::Blackscholes,
        Benchmark::Cholesky,
        Benchmark::Dedup,
        Benchmark::Fluidanimate,
        Benchmark::OceanContiguous,
        Benchmark::OceanNonContiguous,
        Benchmark::X264,
        Benchmark::Streamcluster,
        Benchmark::Raytrace,
    ];

    /// The subset used in the multi-process experiment of Fig. 4 (the four
    /// SPLASH2 benchmarks).
    pub const MULTIPROCESS: [Benchmark; 4] = [
        Benchmark::Barnes,
        Benchmark::Cholesky,
        Benchmark::OceanContiguous,
        Benchmark::OceanNonContiguous,
    ];

    /// The benchmark's name as it appears in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Barnes => "barnes",
            Benchmark::Blackscholes => "blackscholes",
            Benchmark::Cholesky => "cholesky",
            Benchmark::Dedup => "dedup",
            Benchmark::Fluidanimate => "fluidanimate",
            Benchmark::OceanContiguous => "ocean-cont",
            Benchmark::OceanNonContiguous => "ocean-non-cont",
            Benchmark::X264 => "x264",
            Benchmark::Streamcluster => "streamcluster",
            Benchmark::Raytrace => "raytrace",
        }
    }

    /// Looks a benchmark up by its figure name (any profiled benchmark,
    /// not just the paper's eight).
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::EXTENDED
            .iter()
            .copied()
            .find(|b| b.name() == name)
    }

    /// The memory-behaviour profile used to synthesise this benchmark's
    /// traces. The parameters are calibrated so the simulated local/remote
    /// request mix and the relative ALLARM gains track Fig. 2 and Fig. 3
    /// (see EXPERIMENTS.md for measured values).
    pub fn profile(self) -> BenchmarkProfile {
        match self {
            Benchmark::Barnes => BenchmarkProfile {
                name: "barnes",
                private_hot_kb: 96,
                private_stream_kb: 256,
                private_init_kb: 640,
                shared_hot_kb: 96,
                shared_stream_kb: 3072,
                shared_fraction: 0.40,
                private_stream_fraction: 0.10,
                shared_stream_fraction: 0.45,
                write_fraction: 0.30,
                shared_write_fraction: 0.02,
                shared_init_by_thread0: false,
            },
            Benchmark::Blackscholes => BenchmarkProfile {
                name: "blackscholes",
                private_hot_kb: 48,
                private_stream_kb: 192,
                private_init_kb: 192,
                shared_hot_kb: 128,
                shared_stream_kb: 10240,
                shared_fraction: 0.70,
                private_stream_fraction: 0.20,
                shared_stream_fraction: 0.55,
                write_fraction: 0.15,
                shared_write_fraction: 0.01,
                shared_init_by_thread0: true,
            },
            Benchmark::Cholesky => BenchmarkProfile {
                name: "cholesky",
                private_hot_kb: 96,
                private_stream_kb: 320,
                private_init_kb: 576,
                shared_hot_kb: 128,
                shared_stream_kb: 3072,
                shared_fraction: 0.42,
                private_stream_fraction: 0.12,
                shared_stream_fraction: 0.46,
                write_fraction: 0.30,
                shared_write_fraction: 0.03,
                shared_init_by_thread0: false,
            },
            Benchmark::Dedup => BenchmarkProfile {
                name: "dedup",
                private_hot_kb: 64,
                private_stream_kb: 256,
                private_init_kb: 256,
                shared_hot_kb: 160,
                shared_stream_kb: 8192,
                shared_fraction: 0.58,
                private_stream_fraction: 0.20,
                shared_stream_fraction: 0.50,
                write_fraction: 0.30,
                shared_write_fraction: 0.04,
                shared_init_by_thread0: false,
            },
            Benchmark::Fluidanimate => BenchmarkProfile {
                name: "fluidanimate",
                private_hot_kb: 416,
                private_stream_kb: 448,
                private_init_kb: 512,
                shared_hot_kb: 128,
                shared_stream_kb: 3072,
                shared_fraction: 0.32,
                private_stream_fraction: 0.28,
                shared_stream_fraction: 0.46,
                write_fraction: 0.30,
                shared_write_fraction: 0.02,
                shared_init_by_thread0: false,
            },
            Benchmark::OceanContiguous => BenchmarkProfile {
                name: "ocean-cont",
                private_hot_kb: 96,
                private_stream_kb: 192,
                private_init_kb: 768,
                shared_hot_kb: 64,
                shared_stream_kb: 2048,
                shared_fraction: 0.32,
                private_stream_fraction: 0.08,
                shared_stream_fraction: 0.45,
                write_fraction: 0.35,
                shared_write_fraction: 0.01,
                shared_init_by_thread0: false,
            },
            Benchmark::OceanNonContiguous => BenchmarkProfile {
                name: "ocean-non-cont",
                private_hot_kb: 96,
                private_stream_kb: 256,
                private_init_kb: 832,
                shared_hot_kb: 64,
                shared_stream_kb: 3072,
                shared_fraction: 0.35,
                private_stream_fraction: 0.10,
                shared_stream_fraction: 0.46,
                write_fraction: 0.35,
                shared_write_fraction: 0.01,
                shared_init_by_thread0: false,
            },
            Benchmark::X264 => BenchmarkProfile {
                name: "x264",
                private_hot_kb: 80,
                private_stream_kb: 256,
                private_init_kb: 320,
                shared_hot_kb: 192,
                shared_stream_kb: 8192,
                shared_fraction: 0.62,
                private_stream_fraction: 0.18,
                shared_stream_fraction: 0.52,
                write_fraction: 0.25,
                shared_write_fraction: 0.02,
                shared_init_by_thread0: false,
            },
            Benchmark::Raytrace => BenchmarkProfile {
                name: "raytrace",
                // Per-ray working state is tiny; each thread also keeps a
                // small private tile of the frame buffer it writes.
                private_hot_kb: 48,
                private_stream_kb: 128,
                private_init_kb: 128,
                // The scene (BVH nodes, triangles, textures) is shared,
                // read by every thread, and far larger than one node's
                // aggregate cache — the footprint stays per-machine, not
                // per-thread, so a 64-thread run keeps realistic directory
                // pressure without an exploding working set.
                shared_hot_kb: 256,
                shared_stream_kb: 16384,
                shared_fraction: 0.66,
                private_stream_fraction: 0.18,
                shared_stream_fraction: 0.58,
                write_fraction: 0.24,
                shared_write_fraction: 0.01,
                shared_init_by_thread0: false,
            },
            Benchmark::Streamcluster => BenchmarkProfile {
                name: "streamcluster",
                // Each worker keeps a small set of candidate centres hot and
                // builds little other private state.
                private_hot_kb: 40,
                private_stream_kb: 96,
                private_init_kb: 96,
                // Cluster centres and assignment tables are shared and hot;
                // the dominant traffic is the point stream, read in passes.
                shared_hot_kb: 144,
                shared_stream_kb: 12288,
                shared_fraction: 0.66,
                private_stream_fraction: 0.15,
                shared_stream_fraction: 0.62,
                write_fraction: 0.20,
                shared_write_fraction: 0.02,
                shared_init_by_thread0: false,
            },
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The parametric description of a benchmark's memory behaviour.
///
/// All sizes are in kilobytes; per-thread quantities are marked as such.
/// See the crate-level documentation for how the parameters map onto the
/// effects the paper measures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Name used in figures and reports.
    pub name: &'static str,
    /// Per-thread hot (heavily reused) private data.
    pub private_hot_kb: u64,
    /// Per-thread streamed (low-reuse) private data.
    pub private_stream_kb: u64,
    /// Per-thread private data that is written exactly once during an
    /// initialisation pass and never revisited (e.g. ocean's grid setup or
    /// barnes' tree construction). In the baseline every one of these lines
    /// still allocates a probe-filter entry that then sits stale until the
    /// replacement policy recycles it.
    pub private_init_kb: u64,
    /// Globally shared hot data.
    pub shared_hot_kb: u64,
    /// Globally shared streamed data.
    pub shared_stream_kb: u64,
    /// Probability that an access targets shared data.
    pub shared_fraction: f64,
    /// Of private accesses, the probability of hitting the streamed region
    /// (the rest go to the hot region).
    pub private_stream_fraction: f64,
    /// Of shared accesses, the probability of hitting the streamed region.
    pub shared_stream_fraction: f64,
    /// Probability that a private-region access is a store.
    pub write_fraction: f64,
    /// Probability that a shared-region access is a store. Shared data in
    /// these benchmarks is predominantly read (results are accumulated into
    /// private buffers), so this is typically much lower than
    /// [`BenchmarkProfile::write_fraction`].
    pub shared_write_fraction: f64,
    /// If true, every shared page is first touched (initialised) by thread
    /// 0, so all shared data is homed on node 0 (blackscholes).
    pub shared_init_by_thread0: bool,
}

impl BenchmarkProfile {
    /// Validates that the probabilities are in range and the regions are
    /// non-empty.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        for (label, p) in [
            ("shared_fraction", self.shared_fraction),
            ("private_stream_fraction", self.private_stream_fraction),
            ("shared_stream_fraction", self.shared_stream_fraction),
            ("write_fraction", self.write_fraction),
            ("shared_write_fraction", self.shared_write_fraction),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{label} must be within [0, 1], got {p}"));
            }
        }
        if self.private_hot_kb == 0 && self.private_stream_kb == 0 {
            return Err("profile has no private data".to_string());
        }
        if self.shared_hot_kb == 0 && self.shared_stream_kb == 0 {
            return Err("profile has no shared data".to_string());
        }
        Ok(())
    }

    /// Total per-thread private footprint in kilobytes.
    pub fn private_footprint_kb(&self) -> u64 {
        self.private_hot_kb + self.private_stream_kb + self.private_init_kb
    }

    /// Total shared footprint in kilobytes.
    pub fn shared_footprint_kb(&self) -> u64 {
        self.shared_hot_kb + self.shared_stream_kb
    }

    /// Returns a copy scaled by `factor` in every region size (used by the
    /// probe-filter sweeps to keep simulation times reasonable while
    /// preserving the hot/stream/shared structure).
    pub fn scaled(&self, factor: f64) -> BenchmarkProfile {
        let scale = |kb: u64| ((kb as f64 * factor).round() as u64).max(4);
        BenchmarkProfile {
            private_hot_kb: scale(self.private_hot_kb),
            private_stream_kb: scale(self.private_stream_kb),
            private_init_kb: scale(self.private_init_kb),
            shared_hot_kb: scale(self.shared_hot_kb),
            shared_stream_kb: scale(self.shared_stream_kb),
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_eight_benchmarks_in_figure_order() {
        assert_eq!(Benchmark::ALL.len(), 8);
        assert_eq!(Benchmark::ALL[0].name(), "barnes");
        assert_eq!(Benchmark::ALL[7].name(), "x264");
    }

    #[test]
    fn multiprocess_subset_is_splash2() {
        assert_eq!(Benchmark::MULTIPROCESS.len(), 4);
        assert!(Benchmark::MULTIPROCESS.contains(&Benchmark::Barnes));
        assert!(Benchmark::MULTIPROCESS.contains(&Benchmark::OceanNonContiguous));
        assert!(!Benchmark::MULTIPROCESS.contains(&Benchmark::X264));
    }

    #[test]
    fn names_roundtrip() {
        for bench in Benchmark::EXTENDED {
            assert_eq!(Benchmark::from_name(bench.name()), Some(bench));
            assert_eq!(bench.to_string(), bench.name());
        }
        assert_eq!(Benchmark::from_name("nonexistent"), None);
    }

    #[test]
    fn every_profile_is_valid() {
        for bench in Benchmark::EXTENDED {
            let profile = bench.profile();
            profile
                .validate()
                .unwrap_or_else(|e| panic!("{bench}: {e}"));
            assert_eq!(profile.name, bench.name());
        }
    }

    #[test]
    fn blackscholes_is_the_producer_consumer_benchmark() {
        assert!(Benchmark::Blackscholes.profile().shared_init_by_thread0);
        let others = Benchmark::EXTENDED
            .iter()
            .filter(|b| b.profile().shared_init_by_thread0)
            .count();
        assert_eq!(others, 1);
    }

    #[test]
    fn extended_adds_benchmarks_without_touching_the_paper_set() {
        assert_eq!(Benchmark::EXTENDED.len(), Benchmark::ALL.len() + 2);
        assert!(Benchmark::EXTENDED.starts_with(&Benchmark::ALL));
        assert!(!Benchmark::ALL.contains(&Benchmark::Streamcluster));
        assert!(!Benchmark::ALL.contains(&Benchmark::Raytrace));
        assert_eq!(
            Benchmark::from_name("streamcluster"),
            Some(Benchmark::Streamcluster)
        );
        assert_eq!(Benchmark::from_name("raytrace"), Some(Benchmark::Raytrace));
        // Mostly-shared, read-dominated: the profile shape the benchmark
        // is known for.
        let p = Benchmark::Streamcluster.profile();
        assert!(p.shared_fraction > 0.5);
        assert!(p.shared_write_fraction < p.write_fraction);
        assert!(p.shared_footprint_kb() > p.private_footprint_kb());
    }

    #[test]
    fn raytrace_is_sharing_dominated_with_small_private_state() {
        // The scaled-machine profile: most traffic targets the shared
        // scene, shared writes are negligible, and the per-thread private
        // footprint is small enough that 64 threads fit one machine.
        let p = Benchmark::Raytrace.profile();
        assert!(p.shared_fraction > 0.6);
        assert!(p.shared_write_fraction <= 0.01);
        assert!(p.shared_footprint_kb() > 4 * p.private_footprint_kb());
        assert!(p.private_footprint_kb() < 512);
    }

    #[test]
    fn fluidanimate_has_the_largest_private_hot_set() {
        let fluid = Benchmark::Fluidanimate.profile().private_hot_kb;
        for bench in Benchmark::ALL {
            if bench != Benchmark::Fluidanimate {
                assert!(bench.profile().private_hot_kb < fluid);
            }
        }
        // Its hot set exceeds the 256 kB L2, making it capacity-bound.
        assert!(fluid > 256);
    }

    #[test]
    fn footprints_accumulate() {
        let p = Benchmark::Barnes.profile();
        assert_eq!(
            p.private_footprint_kb(),
            p.private_hot_kb + p.private_stream_kb + p.private_init_kb
        );
        assert_eq!(
            p.shared_footprint_kb(),
            p.shared_hot_kb + p.shared_stream_kb
        );
    }

    #[test]
    fn scaling_preserves_structure_and_avoids_zero() {
        let p = Benchmark::OceanContiguous.profile();
        let half = p.scaled(0.5);
        assert_eq!(half.private_hot_kb, p.private_hot_kb / 2);
        assert!(half.validate().is_ok());
        let tiny = p.scaled(0.0001);
        assert!(tiny.private_hot_kb >= 4);
        assert!(tiny.validate().is_ok());
    }

    #[test]
    fn invalid_profiles_are_rejected() {
        let mut p = Benchmark::Barnes.profile();
        p.shared_fraction = 1.5;
        assert!(p.validate().is_err());
        let mut p = Benchmark::Barnes.profile();
        p.private_hot_kb = 0;
        p.private_stream_kb = 0;
        assert!(p.validate().is_err());
        let mut p = Benchmark::Barnes.profile();
        p.shared_hot_kb = 0;
        p.shared_stream_kb = 0;
        assert!(p.validate().is_err());
    }
}

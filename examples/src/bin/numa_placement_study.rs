//! NUMA placement study: ALLARM's dependence on first-touch allocation.
//!
//! ALLARM's private-data detection is statistical: it assumes first-touch
//! placement homes thread-local pages on the toucher's node. This example
//! runs the same benchmark under first-touch, next-touch and interleaved
//! page placement and shows how the local-request fraction — and with it
//! ALLARM's ability to skip probe-filter allocations — changes. It exercises
//! the `SimulationBuilder` API directly rather than the pre-packaged
//! experiment drivers; see `probe_filter_sizing` for the declarative
//! `Scenario` route.
//!
//! ```text
//! cargo run --release -p allarm-examples --bin numa_placement_study
//! ```

use allarm_core::{AllocationPolicy, MachineConfig, SimulationBuilder};
use allarm_mem::NumaPolicy;
use allarm_types::ids::NodeId;
use allarm_workloads::{Benchmark, TraceGenerator};

fn main() {
    let machine = MachineConfig::date2014();
    let workload = TraceGenerator::new(16, 40_000, 99).generate(Benchmark::Barnes);

    println!(
        "NUMA placement sensitivity for {} (16 threads)",
        workload.name
    );
    println!();
    println!(
        "{:<14} {:>8} {:>12} {:>12} {:>14} {:>12}",
        "placement", "policy", "runtime ns", "local frac", "PF allocations", "PF evictions"
    );

    let placements = [
        ("first-touch", NumaPolicy::FirstTouch),
        ("next-touch", NumaPolicy::NextTouch),
        ("interleaved", NumaPolicy::Interleaved),
        ("all-on-node0", NumaPolicy::Fixed(NodeId::new(0))),
    ];

    for (label, numa) in placements {
        for policy in AllocationPolicy::ALL {
            let report = SimulationBuilder::new(machine)
                .policy(policy)
                .numa_policy(numa)
                .build()
                .expect("the Table I machine is valid")
                .run(&workload);
            println!(
                "{:<14} {:>8} {:>12} {:>12.2} {:>14} {:>12}",
                label,
                report.policy,
                report.runtime.as_u64(),
                report.local_fraction(),
                report.pf_allocations,
                report.pf_evictions,
            );
        }
    }

    println!();
    println!("first-touch keeps thread-local pages on the local node, so ALLARM skips");
    println!("directory entries for them; interleaved placement destroys that locality and");
    println!("ALLARM degenerates to the baseline, exactly as Section II-A of the paper argues.");
}

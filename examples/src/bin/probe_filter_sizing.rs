//! Probe-filter sizing study: how small can the sparse directory be?
//!
//! A designer wanting to hand directory SRAM back to the last-level cache
//! (the motivation of the paper's Section III-A5 area table) needs to know
//! how each policy degrades as the probe filter shrinks. This example sweeps
//! the probe-filter coverage for a consolidated multi-process workload — two
//! independent single-threaded jobs, the data-centre scenario of the paper's
//! Section III-B — and prints runtime, evictions, and the silicon area each
//! configuration would occupy.
//!
//! ```text
//! cargo run --release -p allarm-examples --bin probe_filter_sizing
//! ```

use allarm_core::{multiprocess_sweep, ExperimentConfig, FIG4_COVERAGES};
use allarm_energy::probe_filter_area_mm2;
use allarm_workloads::Benchmark;

fn main() {
    let cfg = ExperimentConfig::paper().with_accesses_per_thread(60_000);
    let bench = Benchmark::Cholesky;
    println!("probe-filter sizing for two single-threaded copies of {bench}");
    println!();
    println!(
        "{:<8} {:>10} {:>14} {:>14} {:>12} {:>12}",
        "PF size", "area mm2", "baseline ns", "allarm ns", "base evict", "allarm evict"
    );

    let points = multiprocess_sweep(bench, &cfg, &FIG4_COVERAGES);
    for point in &points {
        println!(
            "{:<8} {:>10.2} {:>14} {:>14} {:>12} {:>12}",
            format!("{}kB", point.pf_coverage_bytes / 1024),
            probe_filter_area_mm2(point.pf_coverage_bytes),
            point.baseline.runtime.as_u64(),
            point.allarm.runtime.as_u64(),
            point.baseline.pf_evictions,
            point.allarm.pf_evictions,
        );
    }

    let full = &points[0];
    let smallest = points.last().expect("sweep has points");
    let baseline_slowdown =
        smallest.baseline.runtime.as_f64() / full.baseline.runtime.as_f64() - 1.0;
    let allarm_slowdown = smallest.allarm.runtime.as_f64() / full.allarm.runtime.as_f64() - 1.0;
    println!();
    println!(
        "shrinking {}kB -> {}kB costs the baseline {:.1}% runtime but ALLARM only {:.1}%,",
        full.pf_coverage_bytes / 1024,
        smallest.pf_coverage_bytes / 1024,
        baseline_slowdown * 100.0,
        allarm_slowdown * 100.0
    );
    println!(
        "while freeing {:.2} mm2 of directory SRAM for reuse as cache.",
        probe_filter_area_mm2(full.pf_coverage_bytes)
            - probe_filter_area_mm2(smallest.pf_coverage_bytes)
    );
}

//! Quickstart: run one benchmark under the baseline sparse directory and
//! under ALLARM on the paper's 16-core machine, and print the headline
//! numbers.
//!
//! ```text
//! cargo run --release -p allarm-examples --bin quickstart
//! ```

use allarm_core::{compare_benchmark, ExperimentConfig};
use allarm_workloads::Benchmark;

fn main() {
    // A reduced trace keeps the quickstart under a couple of seconds; use
    // `ExperimentConfig::paper()` for the full-scale figures.
    let cfg = ExperimentConfig::paper().with_accesses_per_thread(40_000);
    let bench = Benchmark::OceanContiguous;

    println!("running {bench} on the Table I machine (baseline, then ALLARM)...");
    let cmp = compare_benchmark(bench, &cfg);

    println!();
    println!("baseline runtime      {}", cmp.baseline.runtime);
    println!("ALLARM runtime        {}", cmp.allarm.runtime);
    println!("speedup               {:.3}x", cmp.speedup());
    println!();
    println!("probe-filter evictions: {} -> {} ({:.0}% fewer)",
        cmp.baseline.pf_evictions,
        cmp.allarm.pf_evictions,
        (1.0 - cmp.normalized_evictions()) * 100.0);
    println!("network traffic:        {} -> {} bytes ({:.1}% less)",
        cmp.baseline.noc_bytes,
        cmp.allarm.noc_bytes,
        (1.0 - cmp.normalized_traffic()) * 100.0);
    println!("L2 misses:              {} -> {} ({:.1}% fewer)",
        cmp.baseline.l2_misses,
        cmp.allarm.l2_misses,
        (1.0 - cmp.normalized_l2_misses()) * 100.0);
    println!("local directory requests (Fig. 2 fraction): {:.2}", cmp.local_fraction());
    println!("local probes hidden behind DRAM (Fig. 3g):  {:.2}", cmp.hidden_probe_fraction());
}

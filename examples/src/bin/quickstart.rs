//! Quickstart: run one benchmark under the baseline sparse directory and
//! under ALLARM on the paper's 16-core machine, and print the headline
//! numbers — via the declarative Scenario/BatchRunner API.
//!
//! ```text
//! cargo run --release -p allarm-examples --bin quickstart
//! ```

use allarm_core::{AllocationPolicy, BatchRunner, Scenario, ScenarioGrid};
use allarm_workloads::Benchmark;

fn main() {
    let bench = Benchmark::OceanContiguous;
    // A reduced trace keeps the quickstart under a couple of seconds; drop
    // `with_accesses` for the paper's full 250k-access configuration.
    let base = Scenario::paper(bench, AllocationPolicy::Baseline).with_accesses(40_000);
    let grid = ScenarioGrid::new(base).policies(AllocationPolicy::ALL.to_vec());

    println!("running {bench} on the Table I machine (baseline and ALLARM, in parallel)...");
    let results = BatchRunner::new()
        .run(&grid.expand())
        .expect("the paper scenario is valid");
    let cmp = results
        .paired()
        .into_iter()
        .next()
        .expect("one baseline/allarm pair");

    println!();
    println!("baseline runtime      {}", cmp.baseline.runtime);
    println!("ALLARM runtime        {}", cmp.allarm.runtime);
    println!("speedup               {:.3}x", cmp.speedup());
    println!();
    println!(
        "probe-filter evictions: {} -> {} ({:.0}% fewer)",
        cmp.baseline.pf_evictions,
        cmp.allarm.pf_evictions,
        (1.0 - cmp.normalized_evictions()) * 100.0
    );
    println!(
        "network traffic:        {} -> {} bytes ({:.1}% less)",
        cmp.baseline.noc_bytes,
        cmp.allarm.noc_bytes,
        (1.0 - cmp.normalized_traffic()) * 100.0
    );
    println!(
        "L2 misses:              {} -> {} ({:.1}% fewer)",
        cmp.baseline.l2_misses,
        cmp.allarm.l2_misses,
        (1.0 - cmp.normalized_l2_misses()) * 100.0
    );
    println!(
        "local directory requests (Fig. 2 fraction): {:.2}",
        cmp.local_fraction()
    );
    println!(
        "local probes hidden behind DRAM (Fig. 3g):  {:.2}",
        cmp.hidden_probe_fraction()
    );
}

//! Example applications for the ALLARM simulator live in `src/bin/`.

//! Properties of the scaled machine model: the width-generic sharer
//! representation, the core ↔ node mapping, and the 64-core (16 nodes × 4
//! cores) machine end to end.
//!
//! As elsewhere in this workspace, the randomized tests use the engine's
//! own [`StreamRng`] instead of proptest (the build is offline): many
//! random operation sequences from fixed seeds, deterministic and
//! replayable by case number.

use allarm_coherence::SharerSet;
use allarm_core::{AllocationPolicy, BatchRunner, Scenario, ScenarioGrid, SimThreads};
use allarm_engine::{ShardPlan, StreamRng};
use allarm_types::config::{CoresPerNode, MachineConfig, NocConfig};
use allarm_types::ids::{CoreId, NodeId};
use allarm_types::topology::Topology;
use allarm_workloads::{Benchmark, WorkloadSpec};
use std::collections::HashSet;

/// Runs `body` for `cases` independent random cases, printing the failing
/// case number (replayable by seed) before propagating a panic.
fn for_cases(cases: u64, body: impl Fn(&mut StreamRng)) {
    let root = StreamRng::from_seed(0x5CA1_E064);
    for case in 0..cases {
        let mut rng = root.stream(case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "randomized case {case} failed (replay: StreamRng::from_seed(0x5CA1_E064).stream({case}))"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// The sharer set agrees with a `HashSet<CoreId>` model on every
/// insert/remove/contains/count/iter sequence, across machine widths from
/// 1 to 256 cores — covering the inline representation, the wide one, and
/// the promotion boundary at 64.
#[test]
fn sharer_set_agrees_with_a_hash_set_model_across_widths() {
    for_cases(96, |rng| {
        let width = 1 + rng.below(256);
        let mut set = SharerSet::empty();
        let mut model: HashSet<CoreId> = HashSet::new();
        let ops = 1 + rng.below(299);
        for _ in 0..ops {
            let core = CoreId::new(rng.below(width) as u16);
            if rng.chance(0.6) {
                set.insert(core);
                model.insert(core);
            } else {
                set.remove(core);
                model.remove(&core);
            }
            assert_eq!(set.contains(core), model.contains(&core));
        }
        assert_eq!(set.count() as usize, model.len());
        assert_eq!(set.is_empty(), model.is_empty());
        // iter() yields exactly the model's members, ascending.
        let listed: Vec<CoreId> = set.iter().collect();
        let mut expected: Vec<CoreId> = model.iter().copied().collect();
        expected.sort();
        assert_eq!(listed, expected, "width {width}");
    });
}

/// Two sharer sets with the same members are equal however they were
/// built — growth past 64 cores and shrinkage back must not leak into
/// equality or the level-1 node projection.
#[test]
fn sharer_set_equality_is_representation_independent() {
    for_cases(64, |rng| {
        let width = 1 + rng.below(200);
        let cores: Vec<CoreId> = (0..1 + rng.below(20))
            .map(|_| CoreId::new(rng.below(width) as u16))
            .collect();
        let direct: SharerSet = cores.iter().copied().collect();
        // The detour: visit a high core, then remove it again.
        let mut detour = SharerSet::only(CoreId::new(255));
        for &core in &cores {
            detour.insert(core);
        }
        detour.remove(CoreId::new(255));
        let same = !cores.contains(&CoreId::new(255));
        assert_eq!(direct == detour, same);
        if same {
            for cores_per_node in [1u32, 2, 4] {
                let a = direct.node_set(cores_per_node);
                let b = detour.node_set(cores_per_node);
                assert_eq!(a, b);
            }
        }
    });
}

/// The node projection of a sharer set matches projecting each member core
/// through the topology, at every hierarchy width the scaled machines use.
#[test]
fn node_set_matches_per_core_topology_projection() {
    for_cases(64, |rng| {
        let cores_per_node = *rng.choose(&[1u32, 2, 4]).unwrap();
        let num_nodes = 1 + rng.below(16) as u32;
        let topo = Topology::new(num_nodes, cores_per_node);
        let set: SharerSet = (0..rng.below(12))
            .map(|_| CoreId::new(rng.below(u64::from(topo.num_cores())) as u16))
            .collect();
        let nodes = set.node_set(cores_per_node);
        let expected: HashSet<NodeId> = set.iter().map(|c| topo.node_of_core(c)).collect();
        assert_eq!(nodes.count() as usize, expected.len());
        for node in (0..num_nodes as u16).map(NodeId::new) {
            assert_eq!(nodes.contains(node), expected.contains(&node));
        }
    });
}

/// The 256-core machine's substrate, pinned: sharer sets driven across the
/// full 0..256 core range — so every sequence exercises the multi-word
/// representation and the inline ↔ wide promotion boundary at 64 — agree
/// with a `HashSet` model, and their level-1 projection at 4 cores per
/// node agrees with a 64-entry node model built through the topology.
#[test]
fn wide_sharer_and_node_sets_model_the_256_core_machine() {
    let topo = Topology::new(64, 4);
    assert_eq!(topo.num_cores(), 256);
    for_cases(96, |rng| {
        let mut set = SharerSet::empty();
        let mut model: HashSet<CoreId> = HashSet::new();
        let ops = 1 + rng.below(399);
        for _ in 0..ops {
            let core = CoreId::new(rng.below(256) as u16);
            if rng.chance(0.6) {
                set.insert(core);
                model.insert(core);
            } else {
                set.remove(core);
                model.remove(&core);
            }
        }
        assert_eq!(set.count() as usize, model.len());
        for probe in (0..256u16).map(CoreId::new) {
            assert_eq!(set.contains(probe), model.contains(&probe));
        }
        // The node projection: exactly the nodes hosting a member core.
        let nodes = set.node_set(4);
        let node_model: HashSet<NodeId> = model.iter().map(|&c| topo.node_of_core(c)).collect();
        assert_eq!(nodes.count() as usize, node_model.len());
        for node in (0..64u16).map(NodeId::new) {
            assert_eq!(nodes.contains(node), node_model.contains(&node));
        }
        assert_eq!(
            nodes.iter().collect::<Vec<_>>(),
            {
                let mut sorted: Vec<NodeId> = node_model.into_iter().collect();
                sorted.sort();
                sorted
            },
            "node iteration must be ascending and exact"
        );
    });
}

/// The blocked core → node mapping at `cores_per_node` ∈ {1, 2, 4}: every
/// core maps into range, node blocks are contiguous, each node's core list
/// round-trips, and the designated core is the block's first.
#[test]
fn core_to_node_mapping_is_a_contiguous_partition() {
    for cores_per_node in [1u32, 2, 4] {
        // 64 nodes × 4 cores is the scale256 machine.
        for num_nodes in [1u32, 3, 16, 64] {
            let topo = Topology::new(num_nodes, cores_per_node);
            let mut by_node: Vec<Vec<CoreId>> = vec![Vec::new(); num_nodes as usize];
            for i in 0..topo.num_cores() as u16 {
                let core = CoreId::new(i);
                let node = topo.node_of_core(core);
                by_node[node.index()].push(core);
            }
            for (n, cores) in by_node.iter().enumerate() {
                let node = NodeId::new(n as u16);
                assert_eq!(cores.len() as u32, cores_per_node);
                assert_eq!(topo.cores_of_node(node).collect::<Vec<_>>(), *cores);
                assert_eq!(topo.local_core_of(node), cores[0]);
                // Contiguity: consecutive indices.
                for pair in cores.windows(2) {
                    assert_eq!(pair[1].index(), pair[0].index() + 1);
                }
            }
        }
    }
}

/// A machine configuration's topology and the shard plan compose: every
/// core lands on exactly one shard, via its node.
#[test]
fn shard_plan_pins_whole_nodes_with_all_their_cores() {
    let machine = MachineConfig::scale64();
    let topo = machine.topology();
    for num_shards in [1usize, 2, 4, 16] {
        let plan = ShardPlan::new(machine.num_nodes() as usize, num_shards);
        let mut shard_of_core = vec![usize::MAX; machine.num_cores as usize];
        for core in (0..machine.num_cores as u16).map(CoreId::new) {
            let node = topo.node_of_core(core);
            shard_of_core[core.index()] = plan.shard_of_node(node.index());
        }
        // Cores of one node always share a shard.
        for node in (0..machine.num_nodes() as u16).map(NodeId::new) {
            let shards: HashSet<usize> = topo
                .cores_of_node(node)
                .map(|c| shard_of_core[c.index()])
                .collect();
            assert_eq!(shards.len(), 1, "node {node} split across shards");
        }
    }
}

/// The acceptance criterion of the machine-model refactor: the 64-core
/// (16 nodes × 4 cores) scenario is byte-identical across `sim_threads`
/// ∈ {1, 2, 4}.
#[test]
fn scale64_reports_are_identical_across_sim_thread_counts() {
    let base = Scenario {
        name: "scale64/raytrace".to_string(),
        machine: MachineConfig::scale64(),
        policy: AllocationPolicy::Baseline,
        numa_policy: allarm_core::NumaPolicy::FirstTouch,
        workload: WorkloadSpec::threads(Benchmark::Raytrace, 64, 600),
        seed: 2014,
        sim_threads: SimThreads::SERIAL,
        warmup_accesses: 0,
    };
    let grid = ScenarioGrid::new(base).policies(AllocationPolicy::ALL.to_vec());
    let scenarios = grid.expand();
    let reference = BatchRunner::with_threads(1).run(&scenarios).unwrap();
    // The run exercises the hierarchical machine for real: requests reach
    // the directories and some are remote.
    assert!(reference.entries[0].report.directory_requests > 0);
    assert!(reference.entries[0].report.remote_requests > 0);
    for sim_threads in [2usize, 4] {
        let sharded: Vec<Scenario> = scenarios
            .iter()
            .map(|s| s.clone().with_sim_threads(sim_threads))
            .collect();
        let result = BatchRunner::with_threads(1).run(&sharded).unwrap();
        for (a, b) in reference.entries.iter().zip(&result.entries) {
            assert_eq!(
                a.report, b.report,
                "{}: sim_threads={sim_threads} diverged",
                a.scenario.name
            );
        }
    }
}

/// With every core of a node folded onto one router, node-local traffic is
/// free: a single-node machine (all cores per one node) reports zero NoC
/// hop traffic however many cores it has.
#[test]
fn single_node_multicore_machines_have_no_inter_node_traffic() {
    let mut machine = MachineConfig::date2014();
    machine.cores_per_node = CoresPerNode(16);
    machine.noc = NocConfig::mesh(1, 1);
    let scenario = Scenario {
        name: "one-node".to_string(),
        machine,
        policy: AllocationPolicy::Baseline,
        numa_policy: allarm_core::NumaPolicy::FirstTouch,
        workload: WorkloadSpec::threads(Benchmark::Barnes, 16, 500),
        seed: 7,
        sim_threads: SimThreads::SERIAL,
        warmup_accesses: 0,
    };
    let report = scenario.run().unwrap();
    // Messages exist (coherence still happens) but none cross a link.
    assert!(report.noc_messages > 0);
    assert!(report.directory_requests > 0);
    assert_eq!(
        report.remote_requests, 0,
        "one node: every request is local"
    );
}

//! The acceptance criterion of the intra-run parallelism work: for every
//! checked-in scenario grid, sharding a simulation across worker threads
//! (`sim_threads` ∈ {1, 2, 4}) produces reports **byte-identical** to the
//! serial run — the same guarantee the batch runner gives across
//! scenario-level workers, extended down into a single simulation.
//!
//! The grids are scaled down (shorter traces), and the two large sweep
//! grids are subsampled (every 4th point — all benchmarks and both
//! policies still appear), so the sweep stays fast; determinism is a
//! structural property of the kernel, not of the trace length. The CI
//! determinism gate complements this by diffing `scenario_run
//! --sim-threads 4` output on the *full* fig3 grid.

use allarm_bench::{
    fig3_grid, fig3h_grid, fig4_grid, scale256_grid, scale256_pf_sweep_grid, scale64_grid,
    scale64_pf_sweep_grid, streamcluster_grid, tracefile_comparison_grid,
};
use allarm_core::{BatchRunner, ExperimentConfig, JsonlSink, Scenario};
use std::path::Path;

/// The checked-in grids, scaled down to test length (large grids
/// subsampled with stride 4). The scale64 grids put the multi-core-node
/// topology — where a shard owns whole nodes, i.e. blocks of four cores —
/// under the same byte-identity requirement as the paper machines.
fn scaled_grids() -> Vec<(&'static str, Vec<Scenario>)> {
    let cfg = ExperimentConfig::paper().with_accesses_per_thread(700);
    let scale64 = ExperimentConfig::scale64().with_accesses_per_thread(400);
    let stride4 = |v: Vec<Scenario>| -> Vec<Scenario> { v.into_iter().step_by(4).collect() };
    vec![
        ("fig3_comparison", fig3_grid(&cfg).expand()),
        ("fig3h_pf_sweep", stride4(fig3h_grid(&cfg).expand())),
        ("fig4_multiprocess", stride4(fig4_grid(&cfg).expand())),
        (
            "streamcluster_comparison",
            streamcluster_grid(&cfg).expand(),
        ),
        ("scale64_comparison", scale64_grid(&scale64).expand()),
        (
            // Stride 3 keeps both policies represented (policy is the
            // fastest-varying axis, so stride 4 would sample only
            // baselines).
            "scale64_pf_sweep",
            scale64_pf_sweep_grid(&scale64)
                .expand()
                .into_iter()
                .step_by(3)
                .collect(),
        ),
        (
            // The 256-core NUCA machine (torus fabric, LLC slices on):
            // stride 3 over the 3-benchmark × 2-policy grid keeps both
            // policies while the short trace keeps the sweep fast.
            "scale256_comparison",
            {
                let scale256 = ExperimentConfig::scale256().with_accesses_per_thread(150);
                scale256_grid(&scale256)
                    .expand()
                    .into_iter()
                    .step_by(3)
                    .collect()
            },
        ),
        (
            // The concentrated-mesh sweep, subsampled the same way (stride
            // 5 over 4 coverages × 2 policies covers both policies and two
            // coverages).
            "scale256_pf_sweep",
            {
                let scale256 = ExperimentConfig::scale256().with_accesses_per_thread(150);
                scale256_pf_sweep_grid(&scale256)
                    .expand()
                    .into_iter()
                    .step_by(5)
                    .collect()
            },
        ),
        (
            // The trace-replay grid: an externally-sourced reference
            // stream must be just as shard-count-independent as a
            // generated one. The committed sample is already short, so it
            // runs at full length (trace replays ignore access overrides).
            "tracefile_comparison",
            {
                let mut grid = tracefile_comparison_grid();
                grid.base.workload = grid
                    .base
                    .workload
                    .resolved_against(&Path::new(env!("CARGO_MANIFEST_DIR")).join("../scenarios"));
                grid.expand()
            },
        ),
    ]
}

#[test]
fn sharded_runs_are_byte_identical_across_every_checked_in_grid() {
    for (name, scenarios) in scaled_grids() {
        let serial: Vec<Scenario> = scenarios
            .iter()
            .map(|s| s.clone().with_sim_threads(1))
            .collect();
        let reference = BatchRunner::with_threads(1)
            .run(&serial)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        for sim_threads in [2usize, 4] {
            let sharded: Vec<Scenario> = scenarios
                .iter()
                .map(|s| s.clone().with_sim_threads(sim_threads))
                .collect();
            let result = BatchRunner::with_threads(1)
                .run(&sharded)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            for (a, b) in reference.entries.iter().zip(&result.entries) {
                assert_eq!(
                    a.report, b.report,
                    "{name}/{}: sim_threads={sim_threads} diverged from serial",
                    a.scenario.name
                );
            }
        }
    }
}

/// Miss-window batching under stress: a deep window and a wide horizon on
/// the most miss-heavy profile (raytrace on the 64-core machine) must stay
/// byte-identical across shard counts. The grids above already gate the
/// *default* window; this pins the knob at its aggressive end, where
/// per-round windows are deepest and the reply-commit ordering does the
/// most work.
#[test]
fn deep_miss_windows_stay_byte_identical_across_shard_counts() {
    use allarm_core::AllocationPolicy;
    use allarm_types::{MissWindowConfig, Nanos};
    use allarm_workloads::Benchmark;

    let mut base = ExperimentConfig::scale64()
        .with_accesses_per_thread(500)
        .scenario(Benchmark::Raytrace, AllocationPolicy::Baseline);
    base.machine.miss_window = MissWindowConfig {
        depth: 16,
        horizon: Nanos::new(2_000),
    };

    let run = |sim_threads: usize| {
        let scenarios = vec![base.clone().with_sim_threads(sim_threads)];
        BatchRunner::with_threads(1)
            .run(&scenarios)
            .expect("scenario is valid")
    };
    let serial = run(1);
    assert!(
        serial.entries[0].report.max_window_depth > 1,
        "the stress profile must actually batch misses"
    );
    for sim_threads in [2usize, 4] {
        let sharded = run(sim_threads);
        assert_eq!(
            serial.entries[0].report, sharded.entries[0].report,
            "sim_threads={sim_threads} diverged under a deep miss window"
        );
    }
}

/// The JSONL a sweep writes must not depend on the shard count either —
/// this is the exact comparison the CI determinism gate performs with
/// `scenario_run --sim-threads 4`.
#[test]
fn rendered_jsonl_is_identical_across_shard_counts() {
    let cfg = ExperimentConfig::paper().with_accesses_per_thread(500);
    let scenarios = streamcluster_grid(&cfg).expand();

    let mut renderings = Vec::new();
    for sim_threads in [1usize, 4] {
        let set: Vec<Scenario> = scenarios
            .iter()
            .map(|s| s.clone().with_sim_threads(sim_threads))
            .collect();
        let mut sink = JsonlSink::new();
        BatchRunner::with_threads(2)
            .run_with_sink(&set, &mut sink)
            .expect("grid is valid");
        renderings.push(sink.into_string());
    }
    assert_eq!(renderings[0], renderings[1]);
    assert_eq!(renderings[0].lines().count(), scenarios.len());
}

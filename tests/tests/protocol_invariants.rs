//! Randomized property tests of the coherence protocol: for arbitrary
//! interleaved request sequences, the directory plus caches must preserve
//! the single-writer / multiple-reader invariant and the probe filter must
//! never lose track of a remotely cached line.
//!
//! Sequences are generated from fixed seeds with the engine's [`StreamRng`]
//! (the workspace builds offline, without proptest), so every run replays
//! the same cases.

use allarm_cache::{CoherenceState, CoreCaches, ProbeOutcome};
use allarm_coherence::{
    AllocationPolicy, CoherenceRequest, DirectoryController, RequestKind, SystemAccess,
};
use allarm_engine::StreamRng;
use allarm_mem::DramModel;
use allarm_noc::{MessageClass, Network};
use allarm_types::addr::LineAddr;
use allarm_types::config::{MachineConfig, NocConfig, ProbeFilterConfig};
use allarm_types::ids::{CoreId, NodeId};
use allarm_types::Nanos;

/// A four-core machine whose directory for node 0 is under test.
struct TestMachine {
    caches: Vec<CoreCaches>,
    network: Network,
    dram: DramModel,
}

impl TestMachine {
    fn new() -> Self {
        let cfg = MachineConfig::small_test();
        TestMachine {
            caches: (0..4).map(|_| CoreCaches::new(&cfg.l1d, &cfg.l2)).collect(),
            network: Network::new(NocConfig::mesh(2, 2)),
            dram: DramModel::new(4, cfg.dram),
        }
    }
}

impl SystemAccess for TestMachine {
    fn probe_cache(
        &mut self,
        core: CoreId,
        line: LineAddr,
        downgrade: bool,
        invalidate: bool,
    ) -> ProbeOutcome {
        self.caches[core.index()].probe(line, downgrade, invalidate)
    }
    fn send(&mut self, src: NodeId, dst: NodeId, class: MessageClass) -> Nanos {
        self.network.send(src, dst, class)
    }
    fn message_latency(&self, src: NodeId, dst: NodeId, class: MessageClass) -> Nanos {
        self.network.latency(src, dst, class)
    }
    fn dram_read(&mut self, node: NodeId) -> Nanos {
        self.dram.read(node)
    }
    fn dram_write(&mut self, node: NodeId) -> Nanos {
        self.dram.write(node)
    }
    fn node_of_core(&self, core: CoreId) -> NodeId {
        NodeId::new(core.raw())
    }
    fn local_core_of(&self, node: NodeId) -> CoreId {
        CoreId::new(node.raw())
    }
    fn num_cores(&self) -> usize {
        self.caches.len()
    }
    fn cache_access_latency(&self) -> Nanos {
        Nanos::new(1)
    }
}

/// One step of a generated protocol run: `core` reads or writes `line`.
#[derive(Debug, Clone, Copy)]
struct Step {
    core: u16,
    line: u64,
    write: bool,
}

/// Generates a random request sequence. All lines are homed on node 0 (they
/// index within node 0's DRAM pages), so the single directory under test
/// sees every transaction.
fn random_steps(rng: &mut StreamRng) -> Vec<Step> {
    let len = 1 + rng.below(119) as usize;
    (0..len)
        .map(|_| Step {
            core: rng.below(4) as u16,
            line: rng.below(48),
            write: rng.chance(0.5),
        })
        .collect()
}

/// Replays a request sequence through one directory, mirroring what the
/// full simulator does per access, and checks protocol invariants after
/// every step.
fn run_steps(policy: AllocationPolicy, steps: &[Step]) {
    let mut machine = TestMachine::new();
    let mut dir =
        DirectoryController::new(NodeId::new(0), &ProbeFilterConfig::new(16 * 64, 4), policy);

    for step in steps {
        let core = CoreId::new(step.core);
        let node = NodeId::new(step.core);
        let line = LineAddr::new(step.line);

        let need = machine.caches[core.index()].coherence_need(line, step.write);
        machine.caches[core.index()].access(line, step.write);
        if let Some(need) = need {
            let kind = match need {
                allarm_cache::CoherenceNeed::ReadMiss => RequestKind::GetS,
                allarm_cache::CoherenceNeed::WriteMiss => RequestKind::GetX,
                allarm_cache::CoherenceNeed::Upgrade => RequestKind::Upgrade,
            };
            let response =
                dir.handle_request(CoherenceRequest::new(line, kind, core, node), &mut machine);
            if kind.needs_data() {
                machine.caches[core.index()].fill(line, response.fill_state);
            } else {
                machine.caches[core.index()].grant_write(line);
            }
            // A write must end with write permission.
            if step.write {
                let state = machine.caches[core.index()]
                    .state_of(line)
                    .expect("writer holds the line");
                assert!(
                    state.can_write(),
                    "writer left in non-writable state {state}"
                );
            }
        }

        // Invariant: at most one core holds a line in a writable state, and
        // if anyone holds it writable nobody else holds it at all.
        for l in 0..48u64 {
            let line = LineAddr::new(l);
            let holders: Vec<(usize, CoherenceState)> = machine
                .caches
                .iter()
                .enumerate()
                .filter_map(|(i, c)| c.state_of(line).map(|s| (i, s)))
                .collect();
            let writable = holders.iter().filter(|(_, s)| s.can_write()).count();
            assert!(
                writable <= 1,
                "line {l}: multiple writable copies: {holders:?}"
            );
            if writable == 1 {
                assert_eq!(
                    holders.len(),
                    1,
                    "line {l}: writable copy coexists with other copies: {holders:?}"
                );
            }
            let dirty = holders.iter().filter(|(_, s)| s.is_dirty()).count();
            assert!(dirty <= 1, "line {l}: multiple dirty copies: {holders:?}");

            // Any line cached by a core *remote* to its home (node 0) must be
            // tracked by the probe filter — ALLARM only ever skips tracking
            // for the local core.
            for (core_idx, _) in &holders {
                if *core_idx != 0 {
                    assert!(
                        dir.probe_filter().peek(line).is_some(),
                        "line {l} cached by remote core {core_idx} but untracked"
                    );
                }
            }
        }
    }
}

/// Runs 48 random request sequences derived from `seed`, printing the
/// failing case index (the stream label) before a panic propagates so the
/// sequence can be replayed in isolation.
fn run_cases(seed: u64, policy: AllocationPolicy) {
    let root = StreamRng::from_seed(seed);
    for case in 0..48 {
        let steps = random_steps(&mut root.stream(case));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_steps(policy, &steps);
        }));
        if let Err(payload) = result {
            eprintln!(
                "randomized case {case} failed (replay: StreamRng::from_seed({seed:#x}).stream({case}))"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

#[test]
fn baseline_protocol_preserves_swmr() {
    run_cases(0xBA5E_2014, AllocationPolicy::Baseline);
}

#[test]
fn allarm_protocol_preserves_swmr() {
    run_cases(0xA11A_2014, AllocationPolicy::Allarm);
}

//! End-to-end tests of the trace-file ingestion subsystem: record → parse
//! round trips across workload shapes and both formats, corruption error
//! paths, and the headline guarantee — replaying a recorded trace through
//! the full scenario API produces a simulation report **byte-identical**
//! to running the generated workload directly, at every shard count.

use allarm_core::{
    AllocationPolicy, BatchRunner, JsonlSink, MachineConfig, Scenario, TraceFormat, WorkloadSpec,
};
use allarm_types::ids::CoreId;
use allarm_workloads::tracefile::{self, TraceHeader};
use allarm_workloads::Benchmark;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("allarm-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A spread of workload shapes: multi-threaded across several benchmarks
/// and sizes, plus a multi-process one (non-contiguous core pinning).
fn shapes() -> Vec<(WorkloadSpec, u64)> {
    vec![
        (WorkloadSpec::threads(Benchmark::Barnes, 1, 50), 1),
        (WorkloadSpec::threads(Benchmark::Blackscholes, 2, 700), 2014),
        (WorkloadSpec::threads(Benchmark::OceanContiguous, 4, 333), 7),
        (WorkloadSpec::threads(Benchmark::X264, 3, 0), 9),
        (
            WorkloadSpec::multiprocess(Benchmark::Dedup, vec![CoreId::new(0), CoreId::new(8)], 250),
            5,
        ),
    ]
}

#[test]
fn every_workload_shape_round_trips_through_both_formats() {
    let dir = temp_dir("roundtrip");
    for (i, (spec, seed)) in shapes().into_iter().enumerate() {
        let workload = spec.materialize(seed);
        for format in [TraceFormat::Text, TraceFormat::Binary] {
            let path = dir.join(format!("w{i}.{}", format.name()));
            tracefile::write_trace_file(&path, &workload, format).unwrap();

            // Header-only read sees the right shape without the body.
            let header: TraceHeader = tracefile::read_header(&path).unwrap();
            assert_eq!(header.format, format);
            assert_eq!(header.name, workload.name);
            assert_eq!(header.threads.len(), workload.threads.len());
            assert_eq!(header.total_accesses() as usize, workload.total_accesses());
            assert_eq!(header.cores_required(), workload.cores_required());
            assert_eq!(header.checksum, Some(workload.checksum()));

            // Full decode reproduces the workload exactly.
            let (_, decoded) = tracefile::read_workload(&path).unwrap();
            assert_eq!(decoded, workload, "shape {i} via {}", format.name());

            // And so does the WorkloadSpec-level replay, for any seed.
            let replay = WorkloadSpec::trace_file(path.to_string_lossy(), format);
            replay.validate().unwrap();
            assert_eq!(replay.materialize(seed ^ 0xffff), workload);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_and_truncated_files_error_instead_of_replaying_garbage() {
    let dir = temp_dir("corrupt");
    let workload = WorkloadSpec::threads(Benchmark::Cholesky, 2, 300).materialize(3);

    // Binary: flip one body byte → checksum mismatch.
    let path = dir.join("flip.btrace");
    tracefile::write_trace_file(&path, &workload, TraceFormat::Binary).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() - 40;
    bytes[mid] ^= 0x55;
    std::fs::write(&path, &bytes).unwrap();
    let err = tracefile::read_workload(&path).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("checksum mismatch") || msg.contains("varint") || msg.contains("trailing"),
        "{msg}"
    );

    // Binary: truncate the body → "cut short".
    let path = dir.join("trunc.btrace");
    tracefile::write_trace_file(&path, &workload, TraceFormat::Binary).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
    assert!(tracefile::read_workload(&path).is_err());
    // The header is still fine — validation passes, replay panics only at
    // materialize time (and scenario validation is header-level).
    tracefile::read_header(&path).unwrap();

    // Text: drop the last record → declared/actual count mismatch.
    let path = dir.join("short.trace");
    tracefile::write_trace_file(&path, &workload, TraceFormat::Text).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let kept: String = text
        .lines()
        .take(text.lines().count() - 1)
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(&path, kept).unwrap();
    let err = tracefile::read_workload(&path).unwrap_err();
    assert!(err.to_string().contains("truncated"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scenario_validation_reports_trace_problems_as_config_errors() {
    let base = Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline);

    // Missing file: a ConfigError naming the workload, not a panic.
    let mut missing = base.clone();
    missing.workload = WorkloadSpec::trace_file("/does/not/exist.trace", TraceFormat::Binary);
    let err = missing.validate().unwrap_err();
    assert_eq!(err.field(), "workload");
    assert!(err.reason().contains("/does/not/exist.trace"), "{err}");

    // A trace needing more cores than the machine has: caught at validate
    // time from the header alone.
    let dir = temp_dir("oversized");
    let path = dir.join("wide.trace");
    let wide = WorkloadSpec::threads(Benchmark::Barnes, 8, 10).materialize(1);
    tracefile::write_trace_file(&path, &wide, TraceFormat::Text).unwrap();
    let mut oversized = base.clone();
    oversized.machine = MachineConfig::small_test();
    assert!(oversized.machine.num_cores < 8);
    oversized.workload = WorkloadSpec::trace_file(path.to_string_lossy(), TraceFormat::Text);
    let err = oversized.validate().unwrap_err();
    assert_eq!(err.field(), "workload");
    assert!(err.reason().contains("cores"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The headline guarantee: `trace_tool record`-style capture of a
/// generated workload, replayed through the scenario API, produces a
/// report byte-identical to the direct run — including the rendered JSONL,
/// and for sharded runs.
#[test]
fn trace_replay_reports_are_byte_identical_to_direct_runs() {
    let dir = temp_dir("replay");
    let direct = Scenario::quick_test(Benchmark::Blackscholes, AllocationPolicy::Baseline)
        .with_accesses(800);
    let workload = direct.workload();

    for format in [TraceFormat::Text, TraceFormat::Binary] {
        let path = dir.join(format!("replay.{}", format.name()));
        tracefile::write_trace_file(&path, &workload, format).unwrap();
        let mut replay = direct.clone();
        replay.workload = WorkloadSpec::trace_file(path.to_string_lossy(), format);

        for sim_threads in [1usize, 2] {
            let pair = vec![
                direct.clone().with_sim_threads(sim_threads),
                replay.clone().with_sim_threads(sim_threads),
            ];
            let results = BatchRunner::with_threads(1).run(&pair).unwrap();
            assert_eq!(
                results.entries[0].report,
                results.entries[1].report,
                "{} replay diverged at sim_threads={sim_threads}",
                format.name()
            );
            // Provenance: the report's checksum is the file's checksum.
            assert_eq!(
                results.entries[1].report.workload_checksum,
                tracefile::read_header(&path).unwrap().checksum.unwrap()
            );
        }

        // The rendered JSONL matches too (scenario names equal by
        // construction here), which is what the CI gate diffs.
        let mut direct_sink = JsonlSink::new();
        let mut replay_sink = JsonlSink::new();
        BatchRunner::with_threads(1)
            .run_with_sink(std::slice::from_ref(&direct), &mut direct_sink)
            .unwrap();
        BatchRunner::with_threads(1)
            .run_with_sink(std::slice::from_ref(&replay), &mut replay_sink)
            .unwrap();
        assert_eq!(direct_sink.into_string(), replay_sink.into_string());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The streaming guarantee of the frame-chunked v2 container: replaying a
/// recording through the pull-based [`allarm_workloads::TraceSource`] path
/// (the simulator decodes frames on demand, never materializing the
/// workload) produces a report byte-identical to the direct run at every
/// shard count, and carries the recorded stream checksum as provenance.
#[test]
fn v2_streaming_replay_is_byte_identical_to_the_materialized_run() {
    let dir = temp_dir("stream");
    let direct = Scenario::quick_test(Benchmark::OceanContiguous, AllocationPolicy::Baseline)
        .with_accesses(900);
    let workload = direct.workload();
    let path = dir.join("stream.btrace");
    // A short frame length so the replay crosses many frame boundaries.
    tracefile::write_trace_file_framed(&path, &workload, TraceFormat::BinaryV2, 256).unwrap();

    let mut replay = direct.clone();
    replay.workload = WorkloadSpec::trace_file(path.to_string_lossy(), TraceFormat::BinaryV2);
    replay.validate().unwrap();
    assert!(replay.workload.streaming_source().unwrap().is_some());

    for sim_threads in [1usize, 2, 4] {
        let pair = vec![
            direct.clone().with_sim_threads(sim_threads),
            replay.clone().with_sim_threads(sim_threads),
        ];
        let results = BatchRunner::with_threads(1).run(&pair).unwrap();
        assert_eq!(
            results.entries[0].report, results.entries[1].report,
            "streaming replay diverged at sim_threads={sim_threads}"
        );
        assert_eq!(
            results.entries[1].report.workload_checksum,
            workload.checksum()
        );
    }

    // `--accesses` over a v2 replay is a *real* per-thread prefix
    // truncation (satellite of the silent-no-op sweep): the report covers
    // exactly the truncated stream, whose checksum is recomputed from the
    // frames actually replayed.
    let mut truncated = replay.clone();
    truncated.workload = truncated.workload.with_accesses(300);
    truncated.validate().unwrap();
    let report = truncated.run().unwrap();
    let expected: usize = workload
        .threads
        .iter()
        .map(|t| t.accesses.len().min(300))
        .sum();
    assert_eq!(report.total_accesses as usize, expected);
    assert_ne!(report.workload_checksum, workload.checksum());
    std::fs::remove_dir_all(&dir).ok();
}

/// A hand-written (adversarial) text trace drives the simulator: two cores
/// ping-ponging writes on one line — behaviour no generated profile
/// produces deliberately.
#[test]
fn hand_written_adversarial_trace_runs_end_to_end() {
    let dir = temp_dir("pingpong");
    let path = dir.join("pingpong.trace");
    let mut text = String::from(
        "allarm-trace v1 text\n\
         # two cores bouncing one cache line\n\
         name pingpong\n\
         thread 0 core 0 accesses 64\n\
         thread 1 core 15 accesses 64\n",
    );
    for i in 0..64 {
        text.push_str(&format!("0 {} 40000\n", if i % 2 == 0 { 'w' } else { 'r' }));
        text.push_str(&format!(
            "15 {} 40000\n",
            if i % 2 == 0 { 'r' } else { 'w' }
        ));
    }
    std::fs::write(&path, text).unwrap();

    let mut scenario = Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline);
    scenario.workload = WorkloadSpec::trace_file(path.to_string_lossy(), TraceFormat::Text);
    scenario.name = "pingpong/baseline".into();
    scenario.validate().unwrap();
    let report = scenario.run().unwrap();
    assert_eq!(report.workload, "pingpong");
    assert_eq!(report.total_accesses, 128);
    // Every reference targets one shared line homed on one node: all of
    // the second core's requests are remote.
    assert!(report.remote_requests > 0);
    assert_eq!(report.workload_checksum, scenario.workload().checksum());
    std::fs::remove_dir_all(&dir).ok();
}

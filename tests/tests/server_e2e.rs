//! End-to-end exercise of the simulation service over real TCP: the
//! acceptance criteria of the serving subsystem.
//!
//! * two concurrent POSTs both complete under the scheduler's thread
//!   budget, each streaming JSONL that is byte-identical to what
//!   `scenario_run --output` (the [`allarm_core::JsonlSink`] encoding)
//!   produces for the same document;
//! * admission control rejects work beyond the configured queue depth
//!   with a typed 429;
//! * `DELETE` cancels a running job between grid rows and the server
//!   stays healthy for the next job;
//! * malformed documents and unknown routes answer 400/404 through the
//!   shared loader's error text.

use allarm_core::{AllocationPolicy, BatchRunner, Benchmark, JsonlSink, Scenario, ScenarioGrid};
use allarm_server::http::decode_chunked;
use allarm_server::{HttpLimits, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn comparison_grid(accesses: usize) -> ScenarioGrid {
    ScenarioGrid::new(
        Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline).with_accesses(accesses),
    )
    .benchmarks(vec![Benchmark::Barnes, Benchmark::OceanContiguous])
    .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm])
}

fn reference_jsonl(grid: &ScenarioGrid) -> String {
    let mut sink = JsonlSink::new();
    BatchRunner::with_threads(1)
        .run_with_sink(&grid.expand(), &mut sink)
        .unwrap();
    sink.into_string()
}

/// One request on a fresh connection; returns the response head and body.
fn exchange(addr: SocketAddr, request: String) -> (String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut wire = Vec::new();
    stream.read_to_end(&mut wire).unwrap();
    let split = wire
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete head");
    (
        String::from_utf8(wire[..split].to_vec()).unwrap(),
        wire[split + 4..].to_vec(),
    )
}

fn post_job(addr: SocketAddr, document: &str, query: &str) -> (String, String) {
    let (head, body) = exchange(
        addr,
        format!(
            "POST /v1/jobs{query} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{document}",
            document.len(),
        ),
    );
    (head, String::from_utf8(body).unwrap())
}

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let (head, body) = exchange(
        addr,
        format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n"),
    );
    (head, String::from_utf8(body).unwrap())
}

/// Streams `/v1/jobs/<id>/results` to completion and de-chunks it.
fn stream_results(addr: SocketAddr, id: u64) -> String {
    let (head, body) = exchange(
        addr,
        format!("GET /v1/jobs/{id}/results HTTP/1.1\r\nConnection: close\r\n\r\n"),
    );
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    String::from_utf8(decode_chunked(&body).expect("well-formed chunked framing")).unwrap()
}

/// Pulls a job id out of the status JSON (`"id":N`).
fn job_id(status_body: &str) -> u64 {
    let rest = status_body.split("\"id\":").nth(1).expect("an id field");
    rest.chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn concurrent_jobs_stream_byte_identical_results() {
    let grid_a = comparison_grid(400);
    let grid_b = comparison_grid(700);
    let (ref_a, ref_b) = (reference_jsonl(&grid_a), reference_jsonl(&grid_b));

    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // Two concurrent POSTs: the default scheduler has two workers, so
    // both run at once under the shared thread budget.
    let (head_a, body_a) = post_job(addr, &grid_a.to_toml().unwrap(), "");
    let (head_b, body_b) = post_job(addr, &grid_b.to_toml().unwrap(), "");
    assert!(head_a.starts_with("HTTP/1.1 201 Created"), "{head_a}");
    assert!(head_b.starts_with("HTTP/1.1 201 Created"), "{head_b}");
    let (id_a, id_b) = (job_id(&body_a), job_id(&body_b));
    assert_ne!(id_a, id_b);

    // Stream both concurrently while they run.
    let streams = std::thread::scope(|scope| {
        let a = scope.spawn(move || stream_results(addr, id_a));
        let b = scope.spawn(move || stream_results(addr, id_b));
        (a.join().unwrap(), b.join().unwrap())
    });
    assert_eq!(streams.0, ref_a, "job {id_a} drifted from scenario_run");
    assert_eq!(streams.1, ref_b, "job {id_b} drifted from scenario_run");

    let (_, status) = get(addr, &format!("/v1/jobs/{id_a}"));
    assert!(status.contains("\"state\":\"done\""), "{status}");
    let (_, metrics) = get(addr, "/metrics");
    assert!(metrics.contains("allarm_jobs_done 2\n"), "{metrics}");
    assert!(
        metrics.contains("allarm_rows_completed_total 8\n"),
        "{metrics}"
    );
}

#[test]
fn query_overrides_match_the_cli_flags() {
    // `?accesses=` must act exactly like `scenario_run --accesses` so the
    // CI serve gate can byte-compare against the CLI's output file.
    let grid = comparison_grid(9_999);
    let mut overridden = grid.clone();
    overridden.base.workload = overridden.base.workload.with_accesses(250);
    let reference = reference_jsonl(&overridden);

    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let (head, body) = post_job(
        addr,
        &grid.to_toml().unwrap(),
        "?accesses=250&sim_threads=2",
    );
    assert!(head.starts_with("HTTP/1.1 201 Created"), "{head}");
    assert_eq!(stream_results(addr, job_id(&body)), reference);
}

#[test]
fn admission_control_answers_429_and_recovers() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            scheduler: allarm_core::SchedulerConfig {
                workers: 0, // nothing drains: admission is deterministic
                max_queue_depth: 2,
                ..allarm_core::SchedulerConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let document = comparison_grid(300).to_toml().unwrap();

    for _ in 0..2 {
        let (head, _) = post_job(addr, &document, "");
        assert!(head.starts_with("HTTP/1.1 201 Created"), "{head}");
    }
    let (head, body) = post_job(addr, &document, "");
    assert!(head.starts_with("HTTP/1.1 429 Too Many Requests"), "{head}");
    assert!(body.contains("queue is full"), "{body}");

    // Cancelling a queued job frees the slot for the next POST.
    let (head, body) = exchange(
        addr,
        "DELETE /v1/jobs/0 HTTP/1.1\r\nConnection: close\r\n\r\n".into(),
    );
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(
        String::from_utf8(body)
            .unwrap()
            .contains("\"state\":\"cancelled\""),
        "cancelled"
    );
    let (head, _) = post_job(addr, &document, "");
    assert!(head.starts_with("HTTP/1.1 201 Created"), "{head}");
}

#[test]
fn cancellation_stops_a_running_job_between_rows() {
    // One worker, one long job: cancel after the first row lands. The
    // recorded rows must be a byte-identical prefix of the full run, and
    // the server must stay healthy for a follow-up job.
    let long_grid = ScenarioGrid::new(
        Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline).with_accesses(4_000),
    )
    .benchmarks(vec![
        Benchmark::Barnes,
        Benchmark::Cholesky,
        Benchmark::Dedup,
        Benchmark::X264,
    ])
    .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm]);
    let reference = reference_jsonl(&long_grid);

    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            scheduler: allarm_core::SchedulerConfig {
                workers: 1,
                ..allarm_core::SchedulerConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let (_, body) = post_job(addr, &long_grid.to_toml().unwrap(), "");
    let id = job_id(&body);

    // Wait for the first row via the scheduler (visible in-process), then
    // cancel over HTTP.
    server
        .api()
        .scheduler()
        .wait_rows(allarm_core::JobId(id), 0);
    let (head, _) = exchange(
        addr,
        format!("DELETE /v1/jobs/{id} HTTP/1.1\r\nConnection: close\r\n\r\n"),
    );
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");

    // The stream ends; whatever was recorded is a byte-identical prefix.
    let streamed = stream_results(addr, id);
    assert!(
        reference.starts_with(&streamed),
        "not a prefix:\n{streamed}"
    );
    let (_, status) = get(addr, &format!("/v1/jobs/{id}"));
    assert!(
        status.contains("\"state\":\"cancelled\"") || status.contains("\"state\":\"done\""),
        "{status}"
    );

    // Server is still healthy: a fresh job completes.
    let next = comparison_grid(300);
    let next_ref = reference_jsonl(&next);
    let (_, body) = post_job(addr, &next.to_toml().unwrap(), "");
    assert_eq!(stream_results(addr, job_id(&body)), next_ref);
}

#[test]
fn bad_documents_and_routes_get_typed_errors() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            limits: HttpLimits {
                max_body_bytes: 512,
                ..HttpLimits::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // A malformed document gets the shared loader's format-naming error.
    let (head, body) = post_job(addr, "definitely not a scenario", "");
    assert!(head.starts_with("HTTP/1.1 400 Bad Request"), "{head}");
    assert!(body.contains("parsed as TOML"), "{body}");

    // Unknown routes and ids are typed 404s.
    let (head, _) = get(addr, "/v2/whatever");
    assert!(head.starts_with("HTTP/1.1 404 Not Found"), "{head}");
    let (head, _) = get(addr, "/v1/jobs/321/results");
    assert!(head.starts_with("HTTP/1.1 404 Not Found"), "{head}");

    // The configured body limit holds over real TCP.
    let oversized = "x".repeat(4_096);
    let (head, _) = post_job(addr, &oversized, "");
    assert!(head.starts_with("HTTP/1.1 413 Payload Too Large"), "{head}");
}

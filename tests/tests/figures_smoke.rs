//! Smoke tests of the figure-regeneration pipeline at a tiny scale: every
//! experiment driver must run and produce series with the structural
//! properties the paper's figures rely on.

use allarm_core::report::{format_coverage, render_table, FigureSeries};
use allarm_core::{
    compare_benchmark, multiprocess_sweep, pf_size_sweep, ExperimentConfig, FIG3H_COVERAGES,
    FIG4_COVERAGES,
};
use allarm_energy::probe_filter_area_mm2;
use allarm_workloads::Benchmark;

fn smoke_cfg() -> ExperimentConfig {
    ExperimentConfig::quick_test().with_accesses_per_thread(1_000)
}

#[test]
fn fig2_and_fig3_series_cover_every_benchmark() {
    let cfg = smoke_cfg();
    let mut speedup = FigureSeries::new("speedup");
    let mut local = FigureSeries::without_geomean("local");
    for bench in Benchmark::ALL {
        let cmp = compare_benchmark(bench, &cfg);
        local.push(bench.name(), cmp.local_fraction());
        speedup.push(bench.name(), cmp.speedup());
        // Fractions are probabilities.
        assert!((0.0..=1.0).contains(&cmp.local_fraction()), "{bench}");
        assert!(
            (0.0..=1.0).contains(&cmp.hidden_probe_fraction()),
            "{bench}"
        );
        assert!(cmp.speedup() > 0.0);
    }
    let table = render_table("Fig. 3a smoke", &[speedup]);
    for bench in Benchmark::ALL {
        assert!(table.contains(bench.name()));
    }
    assert!(table.contains("geomean"));
}

#[test]
fn fig3h_sweep_produces_one_point_per_coverage() {
    let points = pf_size_sweep(Benchmark::Blackscholes, &smoke_cfg(), &FIG3H_COVERAGES);
    assert_eq!(points.len(), FIG3H_COVERAGES.len());
    for (point, coverage) in points.iter().zip(FIG3H_COVERAGES) {
        assert_eq!(point.pf_coverage_bytes, coverage);
        assert_eq!(point.baseline.pf_coverage_bytes, coverage);
        assert_eq!(point.allarm.pf_coverage_bytes, coverage);
    }
}

#[test]
fn fig4_sweep_baseline_degrades_monotonically_in_evictions() {
    let points = multiprocess_sweep(
        Benchmark::OceanContiguous,
        &smoke_cfg().with_accesses_per_thread(4_000),
        &FIG4_COVERAGES,
    );
    assert_eq!(points.len(), FIG4_COVERAGES.len());
    for pair in points.windows(2) {
        assert!(
            pair[1].baseline.pf_evictions >= pair[0].baseline.pf_evictions,
            "a smaller probe filter cannot evict fewer entries"
        );
        // ALLARM stays (nearly) flat: it never evicts more than the baseline.
        assert!(pair[1].allarm.pf_evictions <= pair[1].baseline.pf_evictions);
    }
}

#[test]
fn area_table_is_monotonic_and_matches_published_points() {
    let mut previous = 0.0;
    for coverage in [32, 64, 128, 256, 512u64] {
        let area = probe_filter_area_mm2(coverage * 1024);
        assert!(area > previous);
        previous = area;
    }
    assert_eq!(probe_filter_area_mm2(512 * 1024), 70.89);
    assert_eq!(probe_filter_area_mm2(32 * 1024), 5.93);
}

#[test]
fn coverage_labels_match_the_paper() {
    let labels: Vec<String> = FIG4_COVERAGES.iter().map(|c| format_coverage(*c)).collect();
    assert_eq!(labels, vec!["512kB", "256kB", "128kB", "64kB", "32kB"]);
}

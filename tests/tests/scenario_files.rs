//! The checked-in scenario grids under `scenarios/` must stay in sync with
//! the constructors in `allarm_bench` (regenerate with
//! `cargo run -p allarm-bench --bin export_scenarios`).

use allarm_bench::{
    consolidation_grid, fig3_grid, fig3h_grid, fig4_grid, kv_store_grid, scale256_grid,
    scale256_pf_sweep_grid, scale64_grid, scale64_pf_sweep_grid, streamcluster_grid,
    tracefile_comparison_grid, tracefile_source_grid, tracefile_v2_comparison_grid,
    CONSOLIDATION_TENANTS, TRACE_SAMPLE_THREADS,
};
use allarm_core::{ExperimentConfig, ScenarioGrid};
use std::path::{Path, PathBuf};

fn scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../scenarios")
}

fn load(name: &str) -> ScenarioGrid {
    let path = scenarios_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    ScenarioGrid::from_toml(&text).unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn checked_in_grids_match_the_constructors() {
    let cfg = ExperimentConfig::paper();
    assert_eq!(load("fig3_comparison.toml"), fig3_grid(&cfg));
    assert_eq!(load("fig3h_pf_sweep.toml"), fig3h_grid(&cfg));
    assert_eq!(load("fig4_multiprocess.toml"), fig4_grid(&cfg));
    assert_eq!(
        load("streamcluster_comparison.toml"),
        streamcluster_grid(&cfg)
    );
    let scale64 = ExperimentConfig::scale64();
    assert_eq!(load("scale64_comparison.toml"), scale64_grid(&scale64));
    assert_eq!(
        load("scale64_pf_sweep.toml"),
        scale64_pf_sweep_grid(&scale64)
    );
    let scale256 = ExperimentConfig::scale256();
    assert_eq!(load("scale256_comparison.toml"), scale256_grid(&scale256));
    assert_eq!(
        load("scale256_pf_sweep.toml"),
        scale256_pf_sweep_grid(&scale256)
    );
    assert_eq!(load("tracefile_source.toml"), tracefile_source_grid());
    assert_eq!(
        load("tracefile_comparison.toml"),
        tracefile_comparison_grid()
    );
    assert_eq!(
        load("tracefile_v2_comparison.toml"),
        tracefile_v2_comparison_grid()
    );
    assert_eq!(load("kv_store_comparison.toml"), kv_store_grid(&cfg));
    assert_eq!(
        load("consolidation_comparison.toml"),
        consolidation_grid(&cfg)
    );
}

/// Scenario documents from before the multi-core-node refactor carry no
/// `cores_per_node` field; they must keep parsing as one-core-per-node
/// machines so every historical grid is still byte-compatible.
#[test]
fn pre_topology_documents_default_to_one_core_per_node() {
    let text = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../scenarios/fig3_comparison.toml"),
    )
    .unwrap();
    let stripped: String = text
        .lines()
        .filter(|l| !l.starts_with("cores_per_node"))
        .map(|l| format!("{l}\n"))
        .collect();
    let grid = ScenarioGrid::from_toml(&stripped).unwrap();
    assert_eq!(grid.base.machine.cores_per_node.get(), 1);
    assert_eq!(grid, fig3_grid(&ExperimentConfig::paper()));
}

/// Scenario documents from before the NUCA/fabric work carry neither an
/// `llc` stanza nor `fabric`/`concentration` fields; they must keep
/// parsing as LLC-less meshes — absent is the same machine as an explicit
/// `enabled = false` stanza, so every historical grid still runs
/// byte-identically.
#[test]
fn pre_nuca_documents_default_to_no_llc_and_a_mesh_fabric() {
    let text = std::fs::read_to_string(scenarios_dir().join("fig3_comparison.toml")).unwrap();
    let mut stripped = String::new();
    let mut in_llc = false;
    for line in text.lines() {
        if line.trim() == "[base.machine.llc]" {
            in_llc = true;
            continue;
        }
        if in_llc {
            // Swallow the stanza body until the next table header.
            if line.trim_start().starts_with('[') {
                in_llc = false;
            } else {
                continue;
            }
        }
        if line.starts_with("fabric") || line.starts_with("concentration") {
            continue;
        }
        stripped.push_str(line);
        stripped.push('\n');
    }
    assert!(!stripped.contains("llc") && !stripped.contains("fabric"));
    let grid = ScenarioGrid::from_toml(&stripped).unwrap();
    assert!(!grid.base.machine.llc.enabled);
    assert_eq!(
        grid.base.machine.noc.fabric,
        allarm_types::config::FabricKind::Mesh
    );
    assert_eq!(grid.base.machine.noc.concentration.get(), 1);
    assert_eq!(grid, fig3_grid(&ExperimentConfig::paper()));
}

#[test]
fn checked_in_grids_are_valid_and_sized_as_documented() {
    let fig3 = load("fig3_comparison.toml");
    assert_eq!(fig3.len(), 16); // 8 benchmarks x 2 policies
    fig3.validate().unwrap();

    let fig3h = load("fig3h_pf_sweep.toml");
    assert_eq!(fig3h.len(), 48); // x 3 coverages
    assert_eq!(fig3h.pf_coverages, vec![512 * 1024, 256 * 1024, 128 * 1024]);
    fig3h.validate().unwrap();

    let fig4 = load("fig4_multiprocess.toml");
    assert_eq!(fig4.len(), 40); // 4 benchmarks x 5 coverages x 2 policies
    assert_eq!(fig4.base.workload.cores_required().unwrap(), 9);
    fig4.validate().unwrap();

    let streamcluster = load("streamcluster_comparison.toml");
    assert_eq!(streamcluster.len(), 2); // 1 benchmark x 2 policies
    assert_eq!(streamcluster.base.workload.label(), "streamcluster");
    streamcluster.validate().unwrap();

    let scale64 = load("scale64_comparison.toml");
    assert_eq!(scale64.len(), 6); // 3 benchmarks x 2 policies
    assert_eq!(scale64.base.machine.num_cores, 64);
    assert_eq!(scale64.base.machine.cores_per_node.get(), 4);
    assert_eq!(scale64.base.machine.num_nodes(), 16);
    scale64.validate().unwrap();

    let sweep = load("scale64_pf_sweep.toml");
    assert_eq!(sweep.len(), 8); // 4 coverages x 2 policies
    assert_eq!(sweep.pf_coverages, allarm_core::SCALE64_COVERAGES.to_vec());
    sweep.validate().unwrap();

    let scale256 = load("scale256_comparison.toml");
    assert_eq!(scale256.len(), 6); // 3 benchmarks x 2 policies
    assert_eq!(scale256.base.machine.num_cores, 256);
    assert_eq!(scale256.base.machine.num_nodes(), 64);
    assert_eq!(
        scale256.base.machine.noc.fabric,
        allarm_types::config::FabricKind::Torus
    );
    assert!(scale256.base.machine.llc.enabled);
    scale256.validate().unwrap();

    let sweep256 = load("scale256_pf_sweep.toml");
    assert_eq!(sweep256.len(), 8); // 4 coverages x 2 policies
    assert_eq!(
        sweep256.base.machine.noc.fabric,
        allarm_types::config::FabricKind::CMesh
    );
    assert_eq!(sweep256.base.machine.noc.concentration.get(), 4);
    assert_eq!(
        sweep256.pf_coverages,
        allarm_core::SCALE256_COVERAGES.to_vec()
    );
    sweep256.validate().unwrap();

    let source = load("tracefile_source.toml");
    assert_eq!(source.len(), 2); // 1 workload x 2 policies
    source.validate().unwrap();

    // The replay grid names its trace relative to the document, so resolve
    // against scenarios/ (what scenario_run does) before validating — this
    // also proves the committed sample trace exists and its header is
    // well-formed and machine-compatible.
    let mut replay = load("tracefile_comparison.toml");
    replay.base.workload = replay.base.workload.resolved_against(&scenarios_dir());
    assert_eq!(replay.len(), 2);
    replay.validate().unwrap();
    assert_eq!(replay.base.workload.label(), "blackscholes");
    assert_eq!(
        replay.base.workload.cores_required().unwrap(),
        TRACE_SAMPLE_THREADS
    );

    // The v2 replay resolves the same way; unlike the v1 grid it opens as
    // a true streaming source, and its frame directory supports prefix
    // truncation (so an `accesses` axis over it is legal).
    let mut replay_v2 = load("tracefile_v2_comparison.toml");
    replay_v2.base.workload = replay_v2.base.workload.resolved_against(&scenarios_dir());
    assert_eq!(replay_v2.len(), 2);
    replay_v2.validate().unwrap();
    assert!(replay_v2.base.workload.supports_length_override());
    assert!(replay_v2
        .base
        .workload
        .streaming_source()
        .unwrap()
        .is_some());
    assert_eq!(
        replay_v2.base.workload.cores_required().unwrap(),
        TRACE_SAMPLE_THREADS
    );

    let kv = load("kv_store_comparison.toml");
    assert_eq!(kv.len(), 2); // 1 benchmark x 2 policies
    assert_eq!(kv.base.workload.label(), "kv-store");
    kv.validate().unwrap();

    let consolidation = load("consolidation_comparison.toml");
    assert_eq!(consolidation.len(), 2); // 1 workload x 2 policies
    assert_eq!(
        consolidation.base.workload.cores_required().unwrap(),
        CONSOLIDATION_TENANTS
    );
    consolidation.validate().unwrap();
}

/// The committed sample trace must be exactly what `trace_tool record`
/// produces from the committed source grid — the round trip CI enforces
/// with a byte diff, checked here at the workload level so `cargo test`
/// catches drift too.
#[test]
fn committed_sample_trace_matches_the_source_grid() {
    let source = load("tracefile_source.toml");
    let recorded = source.base.workload.materialize(source.base.seed);

    let mut replay = load("tracefile_comparison.toml");
    replay.base.workload = replay.base.workload.resolved_against(&scenarios_dir());
    let replayed = replay.base.workload.materialize(replay.base.seed);
    assert_eq!(
        replayed, recorded,
        "scenarios/tracefile_sample.trace drifted from the generator — regenerate with \
         `trace_tool record --format binary --out scenarios/tracefile_sample.trace \
         scenarios/tracefile_source.toml`"
    );
    assert_eq!(replayed.checksum(), recorded.checksum());

    // The frame-chunked v2 sample carries the same reference stream — both
    // via full materialization and via the header-level stream checksum.
    let mut v2 = load("tracefile_v2_comparison.toml");
    v2.base.workload = v2.base.workload.resolved_against(&scenarios_dir());
    let streamed = v2.base.workload.streaming_source().unwrap().unwrap();
    assert_eq!(
        streamed.checksum(),
        recorded.checksum(),
        "scenarios/tracefile_sample_v2.btrace drifted from the generator — regenerate \
         with `trace_tool record --format binary-v2 --out \
         scenarios/tracefile_sample_v2.btrace scenarios/tracefile_source.toml`"
    );
    assert_eq!(v2.base.workload.materialize(v2.base.seed), recorded);
}

//! Property-based tests of the substrate data structures: caches, the probe
//! filter, the mesh, the NUMA allocator and the event queue.

use allarm_cache::{CoherenceState, ReplacementPolicy, SetAssocCache};
use allarm_coherence::ProbeFilter;
use allarm_engine::EventQueue;
use allarm_mem::{NumaAllocator, NumaPolicy};
use allarm_noc::Mesh;
use allarm_types::addr::{LineAddr, VirtAddr, PAGE_BYTES};
use allarm_types::config::{CacheConfig, DramConfig, ProbeFilterConfig};
use allarm_types::ids::{CoreId, NodeId};
use allarm_types::Nanos;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A set-associative cache never holds more lines than its capacity and
    /// never holds the same line twice, for any insert/invalidate sequence.
    #[test]
    fn cache_capacity_and_uniqueness(
        ops in proptest::collection::vec((0u64..256, any::<bool>()), 1..400),
        policy in prop_oneof![
            Just(ReplacementPolicy::Lru),
            Just(ReplacementPolicy::Fifo),
            Just(ReplacementPolicy::Random),
        ],
    ) {
        let mut cache = SetAssocCache::with_policy(&CacheConfig::new(4096, 4, 1), policy);
        for (line, invalidate) in ops {
            let line = LineAddr::new(line);
            if invalidate {
                cache.invalidate(line);
            } else {
                cache.insert(line, CoherenceState::Exclusive);
            }
            prop_assert!(cache.len() <= cache.capacity());
            let mut seen = std::collections::HashSet::new();
            for (addr, _) in cache.iter() {
                prop_assert!(seen.insert(addr), "line {addr} present twice");
            }
        }
    }

    /// After inserting a line it is always findable until it is evicted or
    /// invalidated; a victim is only reported when its set was full.
    #[test]
    fn cache_insert_makes_line_resident(lines in proptest::collection::vec(0u64..512, 1..200)) {
        let mut cache = SetAssocCache::new(&CacheConfig::new(2048, 2, 1));
        for line in lines {
            let line = LineAddr::new(line);
            cache.insert(line, CoherenceState::Shared);
            prop_assert_eq!(cache.probe(line), Some(CoherenceState::Shared));
        }
    }

    /// The probe filter never exceeds its capacity, and every allocation is
    /// either findable afterwards or was rejected deterministically.
    #[test]
    fn probe_filter_occupancy_bounded(
        lines in proptest::collection::vec(0u64..2048, 1..500),
    ) {
        let mut pf = ProbeFilter::new(&ProbeFilterConfig::new(64 * 64, 4));
        for line in lines {
            let line = LineAddr::new(line);
            pf.allocate(line, CoreId::new(0));
            prop_assert!(pf.peek(line).is_some(), "freshly allocated entry must be present");
            prop_assert!(pf.occupancy() <= pf.capacity());
        }
        let stats = pf.stats();
        prop_assert_eq!(
            stats.evictions.get() + pf.occupancy() as u64 + stats.deallocations.get(),
            stats.allocations.get(),
            "allocations = evictions + resident + deallocations"
        );
    }

    /// XY routing: the route length always equals the Manhattan distance
    /// plus one, endpoints match, and consecutive nodes are mesh neighbours.
    #[test]
    fn mesh_routes_are_minimal_and_connected(
        width in 1u32..6, height in 1u32..6, a in 0u16..36, b in 0u16..36,
    ) {
        let mesh = Mesh::new(width, height);
        let n = (width * height) as u16;
        let from = NodeId::new(a % n);
        let to = NodeId::new(b % n);
        let route = mesh.route(from, to);
        prop_assert_eq!(route.len() as u32, mesh.hops(from, to) + 1);
        prop_assert_eq!(route.first().copied(), Some(from));
        prop_assert_eq!(route.last().copied(), Some(to));
        for pair in route.windows(2) {
            prop_assert_eq!(mesh.hops(pair[0], pair[1]), 1);
        }
    }

    /// First-touch placement homes a page on its first toucher whenever that
    /// node has capacity, and translations are stable afterwards.
    #[test]
    fn first_touch_is_sticky(
        touches in proptest::collection::vec((0u64..64, 0u16..4), 1..200),
    ) {
        let mut numa = NumaAllocator::new(
            4,
            DramConfig::new(256 * PAGE_BYTES, 60),
            NumaPolicy::FirstTouch,
        );
        let mut first: std::collections::HashMap<u64, NodeId> = std::collections::HashMap::new();
        for (page, node) in touches {
            let vaddr = VirtAddr::new(page * PAGE_BYTES + 8);
            let frame = numa.translate(vaddr, NodeId::new(node));
            match first.entry(page) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    // Plenty of capacity in this test, so no spills: the home
                    // is the first toucher.
                    prop_assert_eq!(frame.home, NodeId::new(node));
                    e.insert(frame.home);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    prop_assert_eq!(frame.home, *e.get(), "mapping must be stable");
                }
            }
            prop_assert_eq!(numa.home_of_page(frame.phys_page), frame.home);
        }
    }

    /// The event queue pops in non-decreasing time order and preserves
    /// insertion order among equal timestamps.
    #[test]
    fn event_queue_is_a_stable_priority_queue(
        times in proptest::collection::vec(0u64..50, 1..200),
    ) {
        let mut queue = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            queue.push(Nanos::new(*t), i);
        }
        let mut last_time = Nanos::ZERO;
        let mut last_seq_at_time: Option<usize> = None;
        while let Some(event) = queue.pop() {
            prop_assert!(event.time >= last_time);
            if event.time == last_time {
                if let Some(prev) = last_seq_at_time {
                    prop_assert!(event.payload > prev, "ties must pop in insertion order");
                }
            } else {
                last_time = event.time;
            }
            last_seq_at_time = Some(event.payload);
        }
    }
}

//! Randomized property tests of the substrate data structures: caches, the
//! probe filter, the mesh, the NUMA allocator and the event queue.
//!
//! The workspace builds offline, so instead of proptest these use the
//! engine's own [`StreamRng`] to generate many random operation sequences
//! from fixed seeds — fully deterministic, reproducible by seed, and with
//! the failing case number printed on assertion failure.

use allarm_cache::{CoherenceState, ReplacementPolicy, SetAssocCache};
use allarm_coherence::ProbeFilter;
use allarm_engine::{EventQueue, StreamRng};
use allarm_mem::{NumaAllocator, NumaPolicy};
use allarm_noc::Mesh;
use allarm_types::addr::{LineAddr, VirtAddr, PAGE_BYTES};
use allarm_types::config::{CacheConfig, DramConfig, ProbeFilterConfig};
use allarm_types::ids::{CoreId, NodeId};
use allarm_types::Nanos;

/// Runs `body` for `cases` independent random cases. On a failure the
/// case index (the stream label under root seed `0x5E5D_2014`) is printed
/// before the panic propagates, so the failing sequence can be replayed
/// in isolation.
fn for_cases(cases: u64, body: impl Fn(&mut StreamRng)) {
    let root = StreamRng::from_seed(0x5E5D_2014);
    for case in 0..cases {
        let mut rng = root.stream(case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "randomized case {case} failed (replay: StreamRng::from_seed(0x5E5D_2014).stream({case}))"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// A set-associative cache never holds more lines than its capacity and
/// never holds the same line twice, for any insert/invalidate sequence.
#[test]
fn cache_capacity_and_uniqueness() {
    for_cases(64, |rng| {
        let policy = *rng
            .choose(&[
                ReplacementPolicy::Lru,
                ReplacementPolicy::Fifo,
                ReplacementPolicy::Random,
            ])
            .unwrap();
        let mut cache = SetAssocCache::with_policy(&CacheConfig::new(4096, 4, 1), policy);
        let ops = 1 + rng.below(399);
        for _ in 0..ops {
            let line = LineAddr::new(rng.below(256));
            if rng.chance(0.5) {
                cache.invalidate(line);
            } else {
                cache.insert(line, CoherenceState::Exclusive);
            }
            assert!(cache.len() <= cache.capacity());
            let mut seen = std::collections::HashSet::new();
            for (addr, _) in cache.iter() {
                assert!(seen.insert(addr), "line {addr} present twice");
            }
        }
    });
}

/// After inserting a line it is always findable until it is evicted or
/// invalidated.
#[test]
fn cache_insert_makes_line_resident() {
    for_cases(64, |rng| {
        let mut cache = SetAssocCache::new(&CacheConfig::new(2048, 2, 1));
        let ops = 1 + rng.below(199);
        for _ in 0..ops {
            let line = LineAddr::new(rng.below(512));
            cache.insert(line, CoherenceState::Shared);
            assert_eq!(cache.probe(line), Some(CoherenceState::Shared));
        }
    });
}

/// The probe filter never exceeds its capacity, and its occupancy accounting
/// balances: allocations = evictions + resident + deallocations.
#[test]
fn probe_filter_occupancy_bounded() {
    for_cases(64, |rng| {
        let mut pf = ProbeFilter::new(&ProbeFilterConfig::new(64 * 64, 4));
        let ops = 1 + rng.below(499);
        for _ in 0..ops {
            let line = LineAddr::new(rng.below(2048));
            pf.allocate(line, CoreId::new(0));
            assert!(
                pf.peek(line).is_some(),
                "freshly allocated entry must be present"
            );
            assert!(pf.occupancy() <= pf.capacity());
        }
        let stats = pf.stats();
        assert_eq!(
            stats.evictions.get() + pf.occupancy() as u64 + stats.deallocations.get(),
            stats.allocations.get(),
            "allocations = evictions + resident + deallocations"
        );
    });
}

/// XY routing: the route length always equals the Manhattan distance plus
/// one, endpoints match, and consecutive nodes are mesh neighbours.
#[test]
fn mesh_routes_are_minimal_and_connected() {
    for_cases(64, |rng| {
        let width = 1 + rng.below(5) as u32;
        let height = 1 + rng.below(5) as u32;
        let mesh = Mesh::new(width, height);
        let n = (width * height) as u16;
        let from = NodeId::new((rng.below(36) % u64::from(n)) as u16);
        let to = NodeId::new((rng.below(36) % u64::from(n)) as u16);
        let route = mesh.route(from, to);
        assert_eq!(route.len() as u32, mesh.hops(from, to) + 1);
        assert_eq!(route.first().copied(), Some(from));
        assert_eq!(route.last().copied(), Some(to));
        for pair in route.windows(2) {
            assert_eq!(mesh.hops(pair[0], pair[1]), 1);
        }
    });
}

/// First-touch placement homes a page on its first toucher whenever that
/// node has capacity, and translations are stable afterwards.
#[test]
fn first_touch_is_sticky() {
    for_cases(64, |rng| {
        let mut numa = NumaAllocator::new(
            4,
            DramConfig::new(256 * PAGE_BYTES, 60),
            NumaPolicy::FirstTouch,
        );
        let mut first: std::collections::HashMap<u64, NodeId> = std::collections::HashMap::new();
        let touches = 1 + rng.below(199);
        for _ in 0..touches {
            let page = rng.below(64);
            let node = rng.below(4) as u16;
            let vaddr = VirtAddr::new(page * PAGE_BYTES + 8);
            let frame = numa.translate(vaddr, NodeId::new(node));
            match first.entry(page) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    // Plenty of capacity in this test, so no spills: the home
                    // is the first toucher.
                    assert_eq!(frame.home, NodeId::new(node));
                    e.insert(frame.home);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    assert_eq!(frame.home, *e.get(), "mapping must be stable");
                }
            }
            assert_eq!(numa.home_of_page(frame.phys_page), frame.home);
        }
    });
}

/// The event queue pops in non-decreasing time order and preserves
/// insertion order among equal timestamps.
#[test]
fn event_queue_is_a_stable_priority_queue() {
    for_cases(64, |rng| {
        let mut queue = EventQueue::new();
        let count = 1 + rng.below(199);
        for i in 0..count as usize {
            queue.push(Nanos::new(rng.below(50)), i);
        }
        let mut last_time = Nanos::ZERO;
        let mut last_seq_at_time: Option<usize> = None;
        while let Some(event) = queue.pop() {
            assert!(event.time >= last_time);
            if event.time == last_time {
                if let Some(prev) = last_seq_at_time {
                    assert!(event.payload > prev, "ties must pop in insertion order");
                }
            } else {
                last_time = event.time;
            }
            last_seq_at_time = Some(event.payload);
        }
    });
}

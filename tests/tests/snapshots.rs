//! End-to-end tests of the versioned snapshot subsystem: the acceptance
//! gate of the checkpoint/restore work. Checkpointing a scale64 raytrace
//! run at 25%/50%/75% and restoring must produce a final report — down to
//! the serialized JSONL bytes — identical to the uninterrupted run, at
//! every shard count (`sim_threads` ∈ {1, 2, 4}) and at both miss-window
//! settings (the serial depth-1 ablation and the default depth-8 window).
//! On top of that: snapshot bytes are canonical across shard counts, file
//! round trips survive, bit flips and version skews are refused with a
//! typed error naming the section, and fork-from-warm resumption equals a
//! cold run.

use allarm_core::snapshot::{read_header, read_section_table};
use allarm_core::{
    AllocationPolicy, MachineConfig, SimReport, SimSnapshot, SimulationBuilder, Simulator,
};
use allarm_types::config::LlcConfig;
use allarm_types::MissWindowConfig;
use allarm_workloads::{Benchmark, TraceGenerator, Workload};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("allarm-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The scale64 machine at a given miss-window depth, with a shortened
/// trace: restore correctness is a structural property of the kernel, not
/// of the trace length.
fn scale64_simulator(window: MissWindowConfig, sim_threads: usize) -> Simulator {
    let mut machine = MachineConfig::scale64();
    machine.miss_window = window;
    SimulationBuilder::new(machine)
        .policy(AllocationPolicy::Allarm)
        .sim_threads(sim_threads)
        .build()
        .expect("the 64-core machine is valid")
}

fn scale64_workload() -> Workload {
    TraceGenerator::new(64, 300, 2014).generate(Benchmark::Raytrace)
}

/// Reports are compared through their serialized form as well: the JSONL
/// row a sink would write must be byte-identical, not merely `==`.
fn jsonl(report: &SimReport) -> String {
    serde_json::to_string(report)
}

#[test]
fn restore_mid_run_is_byte_identical_at_every_shard_count_and_window() {
    let workload = scale64_workload();
    let total = workload.total_accesses() as u64;
    for window in [
        MissWindowConfig::serial(),
        MissWindowConfig::default_window(),
    ] {
        for sim_threads in [1usize, 2, 4] {
            let sim = scale64_simulator(window, sim_threads);
            let uninterrupted = sim.run(&workload);
            for quarter in [1u64, 2, 3] {
                let snap = sim.run_until(&workload, quarter * total / 4);
                // Round-trip through the on-disk byte format before
                // resuming: the restore path is the deserialized state.
                let snap = SimSnapshot::from_bytes(&snap.to_bytes())
                    .expect("a just-written snapshot parses");
                let resumed = sim.resume(&snap, &workload);
                assert_eq!(
                    resumed, uninterrupted,
                    "depth {} x {sim_threads} shard(s), checkpoint at {quarter}/4",
                    window.depth
                );
                assert_eq!(jsonl(&resumed), jsonl(&uninterrupted));
            }
        }
    }
}

#[test]
fn snapshot_bytes_are_canonical_across_shard_counts() {
    let workload = scale64_workload();
    let target = workload.total_accesses() as u64 / 2;
    let window = MissWindowConfig::default_window();
    let reference = scale64_simulator(window, 1).run_until(&workload, target);
    for sim_threads in [2usize, 4] {
        let snap = scale64_simulator(window, sim_threads).run_until(&workload, target);
        assert_eq!(
            snap.to_bytes(),
            reference.to_bytes(),
            "snapshot bytes depend on sim_threads = {sim_threads}"
        );
    }
}

#[test]
fn forked_runs_equal_cold_runs() {
    // Two trace lengths of the same (benchmark, threads, seed) share an
    // exact per-thread prefix; a snapshot of the longer run taken inside
    // that prefix forks into the shorter workload.
    let host = TraceGenerator::new(4, 900, 7).generate(Benchmark::Barnes);
    let member = TraceGenerator::new(4, 600, 7).generate(Benchmark::Barnes);
    let sim = SimulationBuilder::new(MachineConfig::small_test())
        .build()
        .unwrap();
    let snap = sim.run_until(&host, member.total_accesses() as u64 / 2);
    let forked = sim.resume_forked(&snap, &member);
    let cold = sim.run(&member);
    assert_eq!(forked, cold);
    assert_eq!(jsonl(&forked), jsonl(&cold));
}

#[test]
fn snapshot_files_round_trip_and_corruption_is_refused_with_the_section_named() {
    let dir = temp_dir("snap");
    let workload = TraceGenerator::new(4, 800, 11).generate(Benchmark::OceanContiguous);
    let sim = SimulationBuilder::new(MachineConfig::small_test())
        .build()
        .unwrap();
    let snap = sim.run_until(&workload, workload.total_accesses() as u64 / 2);
    let path = dir.join("mid.snap");
    snap.write_to(&path).unwrap();

    // Round trip: the file restores to the uninterrupted report, and the
    // header-only read agrees with the full parse.
    let reread = SimSnapshot::read_from(&path).unwrap();
    assert_eq!(sim.resume(&reread, &workload), sim.run(&workload));
    assert_eq!(read_header(&path).unwrap(), *reread.header());

    // A single flipped bit in a state section is refused by the full read
    // *and* the header-only read (it verifies every section's checksum),
    // with the error naming the corrupt section.
    let bytes = std::fs::read(&path).unwrap();
    let mut flipped = bytes.clone();
    let mid = flipped.len() * 3 / 5;
    flipped[mid] ^= 0x40;
    let bad = dir.join("flipped.snap");
    std::fs::write(&bad, &flipped).unwrap();
    let err = SimSnapshot::read_from(&bad).unwrap_err();
    assert!(err.section().is_some(), "untyped error: {err}");
    assert!(err.to_string().contains("section"), "{err}");
    let err = read_header(&bad).unwrap_err();
    assert!(err.section().is_some(), "untyped error: {err}");

    // A version skew is refused by name, before any section is touched.
    let mut skewed = bytes.clone();
    skewed[8] = 0x63;
    let bad = dir.join("versioned.snap");
    std::fs::write(&bad, &skewed).unwrap();
    for err in [
        SimSnapshot::read_from(&bad).unwrap_err(),
        read_header(&bad).unwrap_err(),
    ] {
        assert!(
            err.to_string().contains("unsupported snapshot version 99"),
            "{err}"
        );
    }

    // Truncation never panics and never parses.
    for cut in [3usize, 9, 40, bytes.len() - 5] {
        let bad = dir.join("cut.snap");
        std::fs::write(&bad, &bytes[..cut]).unwrap();
        assert!(SimSnapshot::read_from(&bad).is_err(), "cut at {cut} parsed");
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// Walks a snapshot's section frames and returns the byte offset of the
/// *version* field of the section with `id`, or None.
fn section_version_offset(bytes: &[u8], id: u16) -> Option<usize> {
    let count = u16::from_le_bytes([bytes[10], bytes[11]]) as usize;
    let mut pos = 12;
    for _ in 0..count {
        let sid = u16::from_le_bytes([bytes[pos], bytes[pos + 1]]);
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        if sid == id {
            return Some(pos + 2);
        }
        pos += 12 + len + 8;
    }
    None
}

#[test]
fn llc_section_is_present_only_when_enabled_and_skew_is_refused_by_name() {
    let workload = TraceGenerator::new(4, 800, 11).generate(Benchmark::OceanContiguous);
    let mut machine = MachineConfig::small_test();
    machine.cores_per_node = allarm_types::config::CoresPerNode(2);
    machine.noc = allarm_types::config::NocConfig::mesh(1, 2);
    let target = workload.total_accesses() as u64 / 2;

    // LLC disabled: the snapshot has no "llc" section — the bytes are the
    // exact pre-LLC format.
    let plain = SimulationBuilder::new(machine)
        .build()
        .unwrap()
        .run_until(&workload, target)
        .to_bytes();
    const SEC_LLC: u16 = 7;
    assert!(section_version_offset(&plain, SEC_LLC).is_none());

    // LLC enabled: the section is written, listed by the section-table
    // reader as "llc" v1, and the file round-trips.
    machine.llc = LlcConfig::shared_slice(256 * 1024, 16);
    let snap = SimulationBuilder::new(machine)
        .build()
        .unwrap()
        .run_until(&workload, target);
    let dir = temp_dir("llc-snap");
    let path = dir.join("llc.snap");
    snap.write_to(&path).unwrap();
    let table = read_section_table(&path).unwrap();
    let llc_row = table
        .iter()
        .find(|s| s.id == SEC_LLC)
        .expect("LLC-enabled snapshot carries the llc section");
    assert_eq!(llc_row.name, "llc");
    assert_eq!(llc_row.version, 1);
    assert!(llc_row.len > 0);
    assert!(SimSnapshot::read_from(&path).is_ok());

    // A writer with a newer llc section (as a build without this PR would
    // see one from the future) is refused with the section named, and the
    // header-only read refuses identically — nothing downstream of the
    // check can be touched.
    let mut skewed = std::fs::read(&path).unwrap();
    let at = section_version_offset(&skewed, SEC_LLC).unwrap();
    skewed[at] = 2;
    let bad = dir.join("llc-skewed.snap");
    std::fs::write(&bad, &skewed).unwrap();
    for err in [
        SimSnapshot::read_from(&bad).unwrap_err(),
        read_header(&bad).unwrap_err(),
    ] {
        assert_eq!(err.section(), Some("llc"), "{err}");
        assert!(err.to_string().contains("unsupported section version 2"));
    }

    std::fs::remove_dir_all(&dir).ok();
}

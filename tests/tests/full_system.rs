//! End-to-end integration tests of the full simulator: the substrates wired
//! together exactly as the figure harness uses them.

use allarm_core::{
    compare_benchmark, multiprocess_sweep, pf_size_sweep, run_benchmark, AllocationPolicy,
    ExperimentConfig, MachineConfig, SimulationBuilder,
};
use allarm_types::Nanos;
use allarm_workloads::{Benchmark, TraceGenerator};

fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig::quick_test().with_accesses_per_thread(1_200)
}

#[test]
fn every_access_is_accounted_for() {
    for bench in [Benchmark::Barnes, Benchmark::Blackscholes] {
        for policy in AllocationPolicy::ALL {
            let report = run_benchmark(bench, policy, &tiny_cfg());
            assert_eq!(
                report.l1_hits + report.l2_hits + report.l2_misses,
                report.total_accesses,
                "{bench}/{policy}: hierarchy outcomes must partition the accesses"
            );
            assert_eq!(
                report.local_requests + report.remote_requests,
                report.directory_requests
            );
            assert!(report.runtime > Nanos::ZERO);
        }
    }
}

#[test]
fn allarm_never_increases_probe_filter_pressure() {
    for bench in Benchmark::ALL {
        let cmp = compare_benchmark(bench, &tiny_cfg());
        assert!(
            cmp.allarm.pf_allocations <= cmp.baseline.pf_allocations,
            "{bench}: ALLARM allocated more probe-filter entries than the baseline"
        );
        assert!(
            cmp.allarm.pf_evictions <= cmp.baseline.pf_evictions,
            "{bench}: ALLARM evicted more probe-filter entries than the baseline"
        );
        assert!(
            cmp.allarm.allarm_allocation_skips > 0,
            "{bench}: ALLARM never skipped"
        );
        assert_eq!(cmp.baseline.allarm_allocation_skips, 0);
    }
}

#[test]
fn baseline_performs_no_local_probes_and_allarm_hides_most_of_them() {
    let cmp = compare_benchmark(Benchmark::OceanContiguous, &tiny_cfg());
    assert_eq!(cmp.baseline.local_probes, 0);
    assert!(cmp.allarm.local_probes > 0);
    assert!(cmp.hidden_probe_fraction() > 0.5);
    assert!(cmp.allarm.local_probes_hidden <= cmp.allarm.local_probes);
}

#[test]
fn local_fraction_tracks_the_benchmark_mix() {
    // Mostly-shared blackscholes must see a lower local fraction than the
    // NUMA-friendly ocean.
    let cfg = tiny_cfg();
    let blackscholes = compare_benchmark(Benchmark::Blackscholes, &cfg);
    let ocean = compare_benchmark(Benchmark::OceanContiguous, &cfg);
    assert!(blackscholes.local_fraction() < ocean.local_fraction());
}

#[test]
fn simulation_is_deterministic_end_to_end() {
    let a = run_benchmark(Benchmark::Dedup, AllocationPolicy::Allarm, &tiny_cfg());
    let b = run_benchmark(Benchmark::Dedup, AllocationPolicy::Allarm, &tiny_cfg());
    assert_eq!(a, b);
}

#[test]
fn shrinking_the_probe_filter_never_helps_the_baseline() {
    let cfg = tiny_cfg();
    let points = pf_size_sweep(Benchmark::Barnes, &cfg, &[512 * 1024, 64 * 1024]);
    assert_eq!(points.len(), 2);
    assert!(
        points[1].baseline.pf_evictions >= points[0].baseline.pf_evictions,
        "a smaller probe filter cannot evict less"
    );
    assert!(points[1].baseline.runtime >= points[0].baseline.runtime);
}

#[test]
fn multiprocess_workload_is_local_and_allarm_keeps_it_out_of_the_directory() {
    let cfg = tiny_cfg().with_accesses_per_thread(4_000);
    let points = multiprocess_sweep(Benchmark::Cholesky, &cfg, &[64 * 1024]);
    let point = &points[0];
    assert!(point.baseline.local_fraction() > 0.95);
    // The baseline allocates for everything; ALLARM allocates (almost)
    // nothing because every request is local.
    assert!(point.allarm.pf_allocations * 10 < point.baseline.pf_allocations);
    assert!(point.allarm.pf_evictions <= point.baseline.pf_evictions);
}

#[test]
fn policies_agree_when_there_is_no_coherence_pressure() {
    // A single-threaded workload that fits in the cache: both policies
    // produce identical runtimes because the directory is barely exercised.
    let machine = MachineConfig::date2014();
    let workload = TraceGenerator::new(1, 2_000, 3).generate(Benchmark::Blackscholes);
    let build = |policy| {
        SimulationBuilder::new(machine)
            .policy(policy)
            .build()
            .expect("the Table I machine is valid")
    };
    let baseline = build(AllocationPolicy::Baseline).run(&workload);
    let allarm = build(AllocationPolicy::Allarm).run(&workload);
    assert_eq!(baseline.l2_misses, allarm.l2_misses);
    assert_eq!(baseline.runtime, allarm.runtime);
}

#[test]
fn energy_tracks_activity() {
    let cmp = compare_benchmark(Benchmark::OceanNonContiguous, &tiny_cfg());
    assert!(cmp.baseline.energy.probe_filter_pj > 0.0);
    assert!(cmp.baseline.energy.noc_pj > 0.0);
    // Fewer evictions and allocations must not cost more probe-filter energy.
    assert!(cmp.allarm.energy.probe_filter_pj <= cmp.baseline.energy.probe_filter_pj);
}

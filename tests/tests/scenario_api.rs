//! Integration tests of the Scenario/Builder surface: serde round-trips
//! through TOML and JSON, builder validation, and the batch runner's
//! parallel-equals-serial determinism guarantee.

use allarm_core::{
    AllocationPolicy, BatchRunner, JsonlSink, NumaPolicy, Scenario, ScenarioGrid, SimulationBuilder,
};
use allarm_types::ids::{CoreId, NodeId};
use allarm_workloads::{Benchmark, WorkloadSpec};

/// A scenario exercising the non-default corners of the document format:
/// multi-process workload, a newtype enum variant (`Fixed` NUMA policy),
/// and a non-default machine.
fn exotic_scenario() -> Scenario {
    let mut s = Scenario::quick_test(Benchmark::OceanNonContiguous, AllocationPolicy::Allarm);
    s.workload = WorkloadSpec::multiprocess(
        Benchmark::OceanNonContiguous,
        vec![CoreId::new(0), CoreId::new(8)],
        700,
    );
    s.numa_policy = NumaPolicy::Fixed(NodeId::new(3));
    s.machine = s.machine.with_probe_filter_coverage(128 * 1024);
    s.with_seed(99).named("exotic")
}

#[test]
fn scenario_roundtrips_through_toml() {
    for scenario in [
        Scenario::paper(Benchmark::Barnes, AllocationPolicy::Baseline),
        Scenario::quick_test(Benchmark::Blackscholes, AllocationPolicy::Allarm),
        exotic_scenario(),
    ] {
        let text = scenario.to_toml().expect("scenarios serialize to TOML");
        let parsed = Scenario::from_toml(&text)
            .unwrap_or_else(|e| panic!("reparse failed for {}: {e}\n{text}", scenario.name));
        assert_eq!(parsed, scenario, "TOML round-trip must be lossless");
    }
}

#[test]
fn scenario_roundtrips_through_json() {
    for scenario in [
        Scenario::paper(Benchmark::X264, AllocationPolicy::Allarm),
        exotic_scenario(),
    ] {
        let text = scenario.to_json();
        let parsed = Scenario::from_json(&text)
            .unwrap_or_else(|e| panic!("reparse failed for {}: {e}\n{text}", scenario.name));
        assert_eq!(parsed, scenario, "JSON round-trip must be lossless");
    }
}

#[test]
fn grid_roundtrips_through_toml() {
    let grid = ScenarioGrid::new(Scenario::quick_test(
        Benchmark::Barnes,
        AllocationPolicy::Baseline,
    ))
    .benchmarks(vec![Benchmark::Barnes, Benchmark::Dedup])
    .pf_coverages(vec![512 * 1024, 128 * 1024])
    .numa_policies(vec![NumaPolicy::FirstTouch, NumaPolicy::Interleaved])
    .policies(AllocationPolicy::ALL.to_vec());
    let text = grid.to_toml().unwrap();
    let parsed = ScenarioGrid::from_toml(&text).unwrap();
    assert_eq!(parsed, grid);
    assert_eq!(parsed.expand(), grid.expand());
}

#[test]
fn hand_written_toml_parses() {
    // A document a user would write by hand: sections in arbitrary order,
    // comments, multi-line arrays.
    let text = r#"
        # Probe-filter sizing experiment.
        name = "hand-written"
        seed = 7
        policy = "Allarm"
        numa_policy = "FirstTouch"

        [workload]
        [workload.Threads]
        benchmark = "Cholesky"
        threads = 4
        accesses_per_thread = 500

        [machine]
        num_cores = 4
        frequency_ghz = 2
        [machine.l1i]
        size_bytes = 4096
        ways = 2
        line_bytes = 64
        access_latency = 1
        [machine.l1d]
        size_bytes = 4096
        ways = 2
        line_bytes = 64
        access_latency = 1
        [machine.l2]
        size_bytes = 16384
        ways = 4
        line_bytes = 64
        access_latency = 1
        [machine.probe_filter]
        coverage_bytes = 32768
        ways = 4
        access_latency = 1
        sharer_tracking = "SharerVector"
        replacement = "Random"
        [machine.dram]
        node_capacity_bytes = 4194304
        access_latency = 60
        [machine.noc]
        mesh_x = 2
        mesh_y = 2
        flit_bytes = 4
        control_msg_bytes = 8
        data_msg_bytes = 72
        link_bandwidth_bytes_per_ns = 8
        link_latency = 10
    "#;
    let scenario = Scenario::from_toml(text).expect("hand-written scenario parses");
    assert_eq!(scenario.name, "hand-written");
    assert_eq!(scenario.policy, AllocationPolicy::Allarm);
    assert_eq!(scenario.workload.benchmark(), Some(Benchmark::Cholesky));
    scenario.validate().unwrap();
    let report = scenario.run().unwrap();
    assert!(report.total_accesses > 0);
}

#[test]
fn builder_reports_validation_errors() {
    // Machine-level: zero-set cache geometry (the divide-by-zero guard).
    let mut s = Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline);
    s.machine.l2.size_bytes = 128; // 2 lines with 4 ways
    let err = SimulationBuilder::from_scenario(&s).unwrap_err();
    assert_eq!(err.field(), "l2.ways");

    // Workload-level: more threads than cores.
    let mut s = Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline);
    s.workload = WorkloadSpec::threads(Benchmark::Barnes, 17, 100);
    let err = SimulationBuilder::from_scenario(&s).unwrap_err();
    assert_eq!(err.field(), "workload");

    // Workload-level: duplicate process cores.
    let mut s = Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline);
    s.workload =
        WorkloadSpec::multiprocess(Benchmark::Barnes, vec![CoreId::new(1), CoreId::new(1)], 100);
    let err = SimulationBuilder::from_scenario(&s).unwrap_err();
    assert!(err.reason().contains("distinct"));

    // Scenario::run surfaces the same errors instead of panicking.
    assert!(s.run().is_err());
}

#[test]
fn malformed_documents_fail_with_context() {
    let err = Scenario::from_toml("name = \"x\"\n").unwrap_err();
    assert!(err.to_string().contains("missing field"), "{err}");

    let mut s = Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline);
    s.name = "bad-policy".into();
    let text = s.to_toml().unwrap().replace("\"Baseline\"", "\"Bogus\"");
    let err = Scenario::from_toml(&text).unwrap_err();
    assert!(err.to_string().contains("Bogus"), "{err}");
}

/// The acceptance-criterion test: a grid of ≥ 8 scenarios runs in parallel
/// and produces byte-identical reports to serial execution.
#[test]
fn batch_runner_parallel_is_byte_identical_to_serial() {
    let scenarios = ScenarioGrid::new(
        Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline).with_accesses(600),
    )
    .benchmarks(vec![
        Benchmark::Barnes,
        Benchmark::Blackscholes,
        Benchmark::OceanContiguous,
        Benchmark::X264,
    ])
    .pf_coverages(vec![512 * 1024, 128 * 1024])
    .policies(AllocationPolicy::ALL.to_vec())
    .expand();
    assert_eq!(
        scenarios.len(),
        16,
        "4 benchmarks x 2 coverages x 2 policies"
    );

    let serial = BatchRunner::with_threads(1).run(&scenarios).unwrap();
    let parallel = BatchRunner::with_threads(8).run(&scenarios).unwrap();
    assert_eq!(
        serial, parallel,
        "parallel execution must not change results"
    );

    // Byte-identical in the strictest sense: the serialized reports match.
    let mut serial_sink = JsonlSink::new();
    BatchRunner::with_threads(1)
        .run_with_sink(&scenarios, &mut serial_sink)
        .unwrap();
    let mut parallel_sink = JsonlSink::new();
    BatchRunner::with_threads(8)
        .run_with_sink(&scenarios, &mut parallel_sink)
        .unwrap();
    assert_eq!(serial_sink.into_string(), parallel_sink.into_string());
}

#[test]
fn identical_scenarios_produce_identical_reports_across_runs() {
    let scenario =
        Scenario::quick_test(Benchmark::Dedup, AllocationPolicy::Allarm).with_accesses(800);
    let a = scenario.run().unwrap();
    let b = scenario.run().unwrap();
    assert_eq!(a, b);
    // And through the batch runner too.
    let batch = BatchRunner::new()
        .run(std::slice::from_ref(&scenario))
        .unwrap();
    assert_eq!(batch.entries[0].report, a);
}

#[test]
fn paired_comparisons_feed_the_report_layer() {
    let grid = ScenarioGrid::new(
        Scenario::quick_test(Benchmark::OceanContiguous, AllocationPolicy::Baseline)
            .with_accesses(800),
    )
    .policies(AllocationPolicy::ALL.to_vec());
    let results = BatchRunner::new().run(&grid.expand()).unwrap();
    let pairs = results.paired();
    assert_eq!(pairs.len(), 1);
    let cmp = &pairs[0];
    assert!(cmp.speedup() > 0.0);
    assert!(cmp.normalized_evictions() <= 1.0);
    assert_eq!(results.reports().count(), 2);
}

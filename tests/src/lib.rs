//! Integration-test-only crate: the tests spanning multiple ALLARM crates
//! live in the `tests/` subdirectory of this package.
